//! Fabrication-defect maps: dead tiles, dead links, flaky links.
//!
//! Real superconducting devices ship with defective qubits and
//! couplers; the pristine rectangular lattice every schedule assumed so
//! far does not exist at scale. A [`DefectMap`] records, per
//! [`Topology`] node and link, whether the resource is *dead*
//! (permanently unusable — the router and placer must avoid it) or
//! *flaky* (usable, but each traversal fails with some probability —
//! the packet fabric retries with backoff). Maps are loadable from a
//! small text format or sampled at a defect rate from a seeded PRNG, so
//! every benchmark point is reproducible.
//!
//! The map is pure data: [`Mesh::with_defects`](crate::Mesh::with_defects)
//! turns dead resources into permanently-claimed ones, and
//! [`Fabric::with_defects`](crate::Fabric::with_defects) draws per-hop
//! transient faults on flaky links. [`DefectMap::route_avoiding`] is
//! the defect-aware routing entry point: it degrades from the
//! dimension-ordered L-routes to a BFS detour, and reports a hard cut
//! as `None` so callers can surface a structured [`CommError`] instead
//! of panicking or hanging.

use std::error::Error;
use std::fmt;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::coord::{Coord, Path};
use crate::topology::{DimOrder, Topology};

/// Per-hop failure probability assigned to a link that the sampler
/// marks flaky. Kept deliberately high so flaky links are *visible* in
/// small benchmark runs; file-loaded maps can choose any probability.
pub const FLAKY_FAILURE_PROB: f64 = 0.25;

/// A structured communication failure on defective hardware.
///
/// Returned (never panicked) by every defect-aware entry point so the
/// toolflow can exit nonzero with a diagnostic instead of crashing.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum CommError {
    /// No defect-free route exists between the two endpoints — the
    /// defect map cuts the fabric between them.
    Unroutable {
        /// One side of the offending cut.
        src: Coord,
        /// The other side of the offending cut.
        dst: Coord,
    },
    /// The machine does not have enough live cells to place its data
    /// tiles.
    Unplaceable {
        /// Tiles that needed a cell.
        needed: usize,
        /// Live cells available.
        available: usize,
    },
    /// Every ancilla-factory site landed on a dead tile.
    NoLiveFactories {
        /// Factory sites lost to defects.
        dead: usize,
    },
    /// A defect map built for one mesh shape was applied to a machine
    /// of a different shape.
    DefectMapMismatch {
        /// Dimensions the map was built for.
        map: (u32, u32),
        /// Dimensions of the machine it was applied to.
        expected: (u32, u32),
    },
    /// A requested mesh geometry with a zero dimension.
    DegenerateGeometry {
        /// Requested width in routers.
        width: u32,
        /// Requested height in routers.
        height: u32,
    },
}

impl fmt::Display for CommError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CommError::Unroutable { src, dst } => {
                write!(f, "no defect-free route between {src} and {dst}")
            }
            CommError::Unplaceable { needed, available } => write!(
                f,
                "cannot place {needed} data tiles on {available} live cells"
            ),
            CommError::NoLiveFactories { dead } => {
                write!(f, "all {dead} factory sites fell on dead tiles")
            }
            CommError::DefectMapMismatch { map, expected } => write!(
                f,
                "defect map is {}x{} but the machine is {}x{}",
                map.0, map.1, expected.0, expected.1
            ),
            CommError::DegenerateGeometry { width, height } => {
                write!(f, "mesh dimensions must be positive, got {width}x{height}")
            }
        }
    }
}

impl Error for CommError {}

/// A malformed defect-map file.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DefectParseError {
    /// 1-based line of the offending entry (0 for whole-file problems).
    pub line: usize,
    message: String,
}

impl DefectParseError {
    fn new(line: usize, message: impl Into<String>) -> Self {
        DefectParseError {
            line,
            message: message.into(),
        }
    }
}

impl fmt::Display for DefectParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "defect map line {}: {}", self.line, self.message)
    }
}

impl Error for DefectParseError {}

/// Dead and flaky resources of one [`Topology`], in its canonical node
/// and link index spaces.
#[derive(Clone, Debug, PartialEq)]
pub struct DefectMap {
    topo: Topology,
    dead_nodes: Vec<bool>,
    dead_links: Vec<bool>,
    /// Per-hop transient failure probability; 0.0 = reliable.
    flaky: Vec<f64>,
}

impl DefectMap {
    /// A defect-free map — the pristine lattice. Every defect-aware
    /// entry point delegates to the historical code path when handed
    /// one, so the empty map is bit-identical to no map at all.
    pub fn empty(topo: Topology) -> Self {
        DefectMap {
            topo,
            dead_nodes: vec![false; topo.num_nodes()],
            dead_links: vec![false; topo.num_links()],
            flaky: vec![0.0; topo.num_links()],
        }
    }

    /// Samples a map at `rate` from the seeded PRNG: each node is dead
    /// with probability `rate`, each link is dead with probability
    /// `rate`, and each surviving link is flaky (at
    /// [`FLAKY_FAILURE_PROB`] per hop) with probability `rate`. Draw
    /// order is fixed (nodes by index, then links by canonical index),
    /// so a `(topology, rate, seed)` triple names exactly one map on
    /// every machine.
    pub fn sample(topo: Topology, rate: f64, seed: u64) -> Self {
        let mut map = DefectMap::empty(topo);
        if rate <= 0.0 {
            return map;
        }
        let mut rng = StdRng::seed_from_u64(seed);
        for dead in map.dead_nodes.iter_mut() {
            *dead = rng.gen_range(0.0..1.0f64) < rate;
        }
        for i in 0..map.dead_links.len() {
            map.dead_links[i] = rng.gen_range(0.0..1.0f64) < rate;
            if !map.dead_links[i] && rng.gen_range(0.0..1.0f64) < rate {
                map.flaky[i] = FLAKY_FAILURE_PROB;
            }
        }
        map
    }

    /// Parses the text defect-map format:
    ///
    /// ```text
    /// # comments and blank lines are ignored
    /// dims  W H                 # mandatory header: topology size
    /// node  X Y                 # dead router
    /// link  X1 Y1 X2 Y2         # dead link (endpoints adjacent)
    /// flaky X1 Y1 X2 Y2 P       # flaky link, per-hop failure prob P
    /// ```
    ///
    /// # Errors
    ///
    /// Returns a [`DefectParseError`] naming the offending line on any
    /// malformed entry, out-of-bounds coordinate, non-adjacent link, or
    /// probability outside `[0, 1]`.
    pub fn from_text(text: &str) -> Result<Self, DefectParseError> {
        let mut map: Option<DefectMap> = None;
        for (idx, raw) in text.lines().enumerate() {
            let line = idx + 1;
            let trimmed = raw.trim();
            if trimmed.is_empty() || trimmed.starts_with('#') {
                continue;
            }
            let fields: Vec<&str> = trimmed.split_whitespace().collect();
            let parse_u32 = |s: &str| {
                s.parse::<u32>()
                    .map_err(|_| DefectParseError::new(line, format!("bad number `{s}`")))
            };
            match (fields[0], map.as_mut()) {
                ("dims", None) => {
                    if fields.len() != 3 {
                        return Err(DefectParseError::new(line, "dims needs `dims W H`"));
                    }
                    let w = parse_u32(fields[1])?;
                    let h = parse_u32(fields[2])?;
                    if w == 0 || h == 0 {
                        return Err(DefectParseError::new(line, "dims must be positive"));
                    }
                    map = Some(DefectMap::empty(Topology::new(w, h)));
                }
                ("dims", Some(_)) => {
                    return Err(DefectParseError::new(line, "duplicate dims header"));
                }
                (_, None) => {
                    return Err(DefectParseError::new(
                        line,
                        "first entry must be the `dims W H` header",
                    ));
                }
                ("node", Some(m)) => {
                    if fields.len() != 3 {
                        return Err(DefectParseError::new(line, "node needs `node X Y`"));
                    }
                    let c = Coord::new(parse_u32(fields[1])?, parse_u32(fields[2])?);
                    if !m.topo.contains(c) {
                        return Err(DefectParseError::new(
                            line,
                            format!("node {c} off the mesh"),
                        ));
                    }
                    m.dead_nodes[m.topo.node_index(c)] = true;
                }
                ("link", Some(m)) => {
                    if fields.len() != 5 {
                        return Err(DefectParseError::new(line, "link needs `link X1 Y1 X2 Y2`"));
                    }
                    let i = m.parse_link_endpoints(&fields[1..5], line, parse_u32)?;
                    m.dead_links[i] = true;
                }
                ("flaky", Some(m)) => {
                    if fields.len() != 6 {
                        return Err(DefectParseError::new(
                            line,
                            "flaky needs `flaky X1 Y1 X2 Y2 P`",
                        ));
                    }
                    let i = m.parse_link_endpoints(&fields[1..5], line, parse_u32)?;
                    let p: f64 = fields[5].parse().map_err(|_| {
                        DefectParseError::new(line, format!("bad probability `{}`", fields[5]))
                    })?;
                    if !(0.0..=1.0).contains(&p) {
                        return Err(DefectParseError::new(
                            line,
                            format!("probability {p} outside [0, 1]"),
                        ));
                    }
                    m.flaky[i] = p;
                }
                (other, Some(_)) => {
                    return Err(DefectParseError::new(
                        line,
                        format!("unknown directive `{other}`"),
                    ));
                }
            }
        }
        map.ok_or_else(|| DefectParseError::new(0, "missing `dims W H` header"))
    }

    fn parse_link_endpoints(
        &self,
        fields: &[&str],
        line: usize,
        parse_u32: impl Fn(&str) -> Result<u32, DefectParseError>,
    ) -> Result<usize, DefectParseError> {
        let a = Coord::new(parse_u32(fields[0])?, parse_u32(fields[1])?);
        let b = Coord::new(parse_u32(fields[2])?, parse_u32(fields[3])?);
        if !self.topo.contains(a) || !self.topo.contains(b) {
            return Err(DefectParseError::new(
                line,
                format!("link {a} - {b} off the mesh"),
            ));
        }
        if !a.is_adjacent(b) {
            return Err(DefectParseError::new(
                line,
                format!("link endpoints {a} and {b} are not adjacent"),
            ));
        }
        Ok(self.topo.link_index(a, b))
    }

    /// The topology whose index spaces this map annotates.
    pub fn topology(&self) -> Topology {
        self.topo
    }

    /// `true` when the map marks nothing — the pristine lattice.
    pub fn is_empty(&self) -> bool {
        !self.dead_nodes.iter().any(|&d| d)
            && !self.dead_links.iter().any(|&d| d)
            && !self.has_transient_faults()
    }

    /// `true` when any link has a nonzero per-hop failure probability.
    pub fn has_transient_faults(&self) -> bool {
        self.flaky.iter().any(|&p| p > 0.0)
    }

    /// Is router `c` dead?
    ///
    /// # Panics
    ///
    /// Panics if `c` is off the topology.
    pub fn node_dead(&self, c: Coord) -> bool {
        assert!(self.topo.contains(c), "node {c} off the topology");
        self.dead_nodes[self.topo.node_index(c)]
    }

    /// Is the link between adjacent routers `a` and `b` dead?
    ///
    /// # Panics
    ///
    /// Panics if the routers are off the topology or not adjacent.
    pub fn link_dead(&self, a: Coord, b: Coord) -> bool {
        assert!(
            self.topo.contains(a) && self.topo.contains(b),
            "link endpoints must be on the topology"
        );
        self.dead_links[self.topo.link_index(a, b)]
    }

    /// Per-hop transient failure probability of the link between
    /// adjacent routers `a` and `b` (0.0 = reliable).
    ///
    /// # Panics
    ///
    /// As [`DefectMap::link_dead`].
    pub fn link_flaky_prob(&self, a: Coord, b: Coord) -> f64 {
        assert!(
            self.topo.contains(a) && self.topo.contains(b),
            "link endpoints must be on the topology"
        );
        self.flaky[self.topo.link_index(a, b)]
    }

    /// Number of dead routers.
    pub fn dead_node_count(&self) -> usize {
        self.dead_nodes.iter().filter(|&&d| d).count()
    }

    /// Number of dead links.
    pub fn dead_link_count(&self) -> usize {
        self.dead_links.iter().filter(|&&d| d).count()
    }

    /// Number of flaky (but live) links.
    pub fn flaky_link_count(&self) -> usize {
        self.flaky.iter().filter(|&&p| p > 0.0).count()
    }

    /// `true` if `path` traverses no dead node or dead link.
    pub fn path_clear(&self, path: &Path) -> bool {
        path.nodes().iter().all(|&n| !self.node_dead(n))
            && path.links().all(|(a, b)| !self.link_dead(a, b))
    }

    pub(crate) fn node_dead_idx(&self, i: usize) -> bool {
        self.dead_nodes[i]
    }

    pub(crate) fn link_dead_idx(&self, i: usize) -> bool {
        self.dead_links[i]
    }

    pub(crate) fn flaky_probs(&self) -> &[f64] {
        &self.flaky
    }

    /// Walks the dimension-ordered route and reports whether it stays
    /// clear of dead resources, accumulating nodes into `out`.
    fn try_dim_ordered(&self, src: Coord, dst: Coord, order: DimOrder) -> Option<Path> {
        let mut nodes = Vec::with_capacity(src.manhattan(dst) as usize + 1);
        let mut prev: Option<Coord> = None;
        let clean = Topology::walk_dim_ordered(src, dst, order, |c| {
            if self.node_dead(c) {
                return false;
            }
            if let Some(p) = prev {
                if self.link_dead(p, c) {
                    return false;
                }
            }
            prev = Some(c);
            nodes.push(c);
            true
        });
        clean.then(|| Path::new(nodes))
    }

    /// Shortest defect-free route from `src` to `dst`, degrading
    /// gracefully: the X-then-Y L-route if it is clear (so on an empty
    /// map this is exactly [`Topology::route_xy`]), else the Y-then-X
    /// mirror, else a BFS detour over live resources. Returns `None`
    /// when the defects cut the fabric between the endpoints — the
    /// caller's [`CommError::Unroutable`] signal.
    ///
    /// # Panics
    ///
    /// Panics if either endpoint is off the topology.
    pub fn route_avoiding(&self, src: Coord, dst: Coord) -> Option<Path> {
        assert!(
            self.topo.contains(src) && self.topo.contains(dst),
            "endpoints must be on the topology"
        );
        if self.node_dead(src) || self.node_dead(dst) {
            return None;
        }
        if let Some(p) = self.try_dim_ordered(src, dst, DimOrder::XThenY) {
            return Some(p);
        }
        if let Some(p) = self.try_dim_ordered(src, dst, DimOrder::YThenX) {
            return Some(p);
        }
        self.route_bfs(src, dst)
    }

    /// BFS over live nodes/links, east/west/south/north neighbor order
    /// (matching the mesh's adaptive router), flat parent array.
    fn route_bfs(&self, src: Coord, dst: Coord) -> Option<Path> {
        let topo = self.topo;
        let w = topo.width();
        let h = topo.height();
        let src_i = topo.node_index(src);
        let dst_i = topo.node_index(dst);
        let mut parent: Vec<u32> = vec![u32::MAX; topo.num_nodes()];
        parent[src_i] = src_i as u32;
        let mut frontier: Vec<u32> = vec![src_i as u32];
        let mut next: Vec<u32> = Vec::new();
        while !frontier.is_empty() && parent[dst_i] == u32::MAX {
            for &ni in &frontier {
                let x = ni % w;
                let y = ni / w;
                let cur = Coord::new(x, y);
                let mut visit = |nb: Coord| {
                    let nb_i = topo.node_index(nb);
                    if parent[nb_i] != u32::MAX
                        || self.dead_nodes[nb_i]
                        || self.dead_links[topo.link_index(cur, nb)]
                    {
                        return;
                    }
                    parent[nb_i] = ni;
                    next.push(nb_i as u32);
                };
                if x + 1 < w {
                    visit(Coord::new(x + 1, y));
                }
                if x > 0 {
                    visit(Coord::new(x - 1, y));
                }
                if y + 1 < h {
                    visit(Coord::new(x, y + 1));
                }
                if y > 0 {
                    visit(Coord::new(x, y - 1));
                }
            }
            frontier.clear();
            std::mem::swap(&mut frontier, &mut next);
        }
        if parent[dst_i] == u32::MAX {
            return None;
        }
        let mut nodes = Vec::new();
        let mut cur = dst_i as u32;
        loop {
            nodes.push(Coord::new(cur % w, cur / w));
            if cur as usize == src_i {
                break;
            }
            cur = parent[cur as usize];
        }
        nodes.reverse();
        Some(Path::new(nodes))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_map_is_empty_and_routes_like_xy() {
        let topo = Topology::new(6, 5);
        let map = DefectMap::empty(topo);
        assert!(map.is_empty());
        assert!(!map.has_transient_faults());
        let src = Coord::new(0, 4);
        let dst = Coord::new(5, 0);
        assert_eq!(map.route_avoiding(src, dst), Some(topo.route_xy(src, dst)));
    }

    #[test]
    fn sampling_is_deterministic_and_rate_zero_is_empty() {
        let topo = Topology::new(10, 10);
        let a = DefectMap::sample(topo, 0.1, 42);
        let b = DefectMap::sample(topo, 0.1, 42);
        assert_eq!(a, b);
        let c = DefectMap::sample(topo, 0.1, 43);
        assert_ne!(a, c, "different seeds should differ on a 10x10 mesh");
        assert!(DefectMap::sample(topo, 0.0, 42).is_empty());
    }

    #[test]
    fn sampling_at_high_rate_marks_defects() {
        let map = DefectMap::sample(Topology::new(8, 8), 0.5, 7);
        assert!(map.dead_node_count() > 0);
        assert!(map.dead_link_count() > 0);
        assert!(map.flaky_link_count() > 0);
        assert!(map.has_transient_faults());
    }

    #[test]
    fn parses_the_text_format() {
        let text = "# comment\n\ndims 4 3\nnode 1 1\nlink 0 0 1 0\nflaky 2 0 3 0 0.5\n";
        let map = DefectMap::from_text(text).unwrap();
        assert_eq!(map.topology(), Topology::new(4, 3));
        assert!(map.node_dead(Coord::new(1, 1)));
        assert!(map.link_dead(Coord::new(0, 0), Coord::new(1, 0)));
        assert_eq!(map.link_flaky_prob(Coord::new(2, 0), Coord::new(3, 0)), 0.5);
        assert_eq!(map.dead_node_count(), 1);
        assert_eq!(map.dead_link_count(), 1);
        assert_eq!(map.flaky_link_count(), 1);
    }

    #[test]
    fn parse_errors_name_the_line() {
        for (text, line) in [
            ("node 0 0\n", 1),
            ("dims 4 3\nnode 9 9\n", 2),
            ("dims 4 3\nlink 0 0 2 0\n", 2),
            ("dims 4 3\nflaky 0 0 1 0 1.5\n", 2),
            ("dims 4 3\nwhat 1 2\n", 2),
            ("dims 0 3\n", 1),
        ] {
            let err = DefectMap::from_text(text).unwrap_err();
            assert_eq!(err.line, line, "{text:?}: {err}");
        }
        assert_eq!(DefectMap::from_text("# nothing\n").unwrap_err().line, 0);
    }

    #[test]
    fn route_avoiding_detours_around_a_blocked_row() {
        let mut text = String::from("dims 5 3\n");
        // Kill the whole middle of row 0 so the XY route 0,0 -> 4,0 must
        // dip into row 1 and come back.
        text.push_str("node 2 0\n");
        let map = DefectMap::from_text(&text).unwrap();
        let route = map
            .route_avoiding(Coord::new(0, 0), Coord::new(4, 0))
            .unwrap();
        assert_eq!(route.source(), Coord::new(0, 0));
        assert_eq!(route.dest(), Coord::new(4, 0));
        assert!(map.path_clear(&route));
        assert_eq!(route.len_hops(), 6, "shortest detour adds two hops");
    }

    #[test]
    fn route_avoiding_prefers_the_yx_mirror_before_bfs() {
        let topo = Topology::new(4, 4);
        let mut map = DefectMap::empty(topo);
        // Break the XY route 0,0 -> 3,3 at its first horizontal link.
        let i = topo.link_index(Coord::new(0, 0), Coord::new(1, 0));
        map.dead_links[i] = true;
        let route = map
            .route_avoiding(Coord::new(0, 0), Coord::new(3, 3))
            .unwrap();
        assert_eq!(route, topo.route_yx(Coord::new(0, 0), Coord::new(3, 3)));
    }

    #[test]
    fn cut_fabric_is_unroutable() {
        // A full dead column cuts the mesh in two.
        let mut text = String::from("dims 5 3\n");
        for y in 0..3 {
            text.push_str(&format!("node 2 {y}\n"));
        }
        let map = DefectMap::from_text(&text).unwrap();
        assert_eq!(map.route_avoiding(Coord::new(0, 1), Coord::new(4, 1)), None);
        // Dead endpoints are unroutable too.
        assert_eq!(map.route_avoiding(Coord::new(2, 0), Coord::new(0, 0)), None);
        // But both sides stay internally routable.
        assert!(map
            .route_avoiding(Coord::new(0, 0), Coord::new(1, 2))
            .is_some());
    }

    #[test]
    fn comm_error_displays_the_cut() {
        let e = CommError::Unroutable {
            src: Coord::new(1, 2),
            dst: Coord::new(3, 4),
        };
        assert!(e.to_string().contains("(1, 2)"));
        assert!(e.to_string().contains("(3, 4)"));
        let u = CommError::Unplaceable {
            needed: 9,
            available: 4,
        };
        assert!(u.to_string().contains('9'));
        let nf = CommError::NoLiveFactories { dead: 3 };
        assert!(nf.to_string().contains('3'));
    }
}
