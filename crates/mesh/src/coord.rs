//! Mesh coordinates and routes.

use std::fmt;

/// A router position on the 2D mesh (tile corners in the paper's tiled
/// architecture, Figure 5: "the tile corners are routers").
///
/// # Examples
///
/// ```
/// use scq_mesh::Coord;
/// let a = Coord::new(1, 2);
/// let b = Coord::new(4, 0);
/// assert_eq!(a.manhattan(b), 5);
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Coord {
    /// Column.
    pub x: u32,
    /// Row.
    pub y: u32,
}

impl Coord {
    /// Creates a coordinate.
    pub fn new(x: u32, y: u32) -> Self {
        Coord { x, y }
    }

    /// Manhattan distance to `other` — the minimum hop count of any
    /// route between the two routers.
    pub fn manhattan(self, other: Coord) -> u32 {
        self.x.abs_diff(other.x) + self.y.abs_diff(other.y)
    }

    /// Returns `true` if `other` is one hop away.
    pub fn is_adjacent(self, other: Coord) -> bool {
        self.manhattan(other) == 1
    }
}

impl fmt::Display for Coord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, {})", self.x, self.y)
    }
}

/// A route through the mesh: a sequence of adjacent router coordinates.
///
/// Construct with [`Path::new`], which validates contiguity, or via the
/// routing functions on [`Mesh`](crate::Mesh).
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct Path {
    nodes: Vec<Coord>,
}

impl Path {
    /// Creates a path from a node sequence.
    ///
    /// # Panics
    ///
    /// Panics if the sequence is empty or any consecutive pair is not
    /// adjacent.
    pub fn new(nodes: Vec<Coord>) -> Self {
        assert!(!nodes.is_empty(), "a path needs at least one node");
        for pair in nodes.windows(2) {
            assert!(
                pair[0].is_adjacent(pair[1]),
                "non-adjacent path step {} -> {}",
                pair[0],
                pair[1]
            );
        }
        Path { nodes }
    }

    /// Creates an empty scratch path for the `*_into` routing APIs on
    /// [`Mesh`](crate::Mesh), which overwrite it with a valid route.
    ///
    /// An empty path is a *buffer*, not a route: [`Path::source`] and
    /// [`Path::dest`] panic on it, and it must not be claimed. It exists
    /// so hot loops can recycle the backing allocation across routing
    /// attempts instead of allocating a fresh `Vec` per attempt.
    pub fn empty() -> Path {
        Path { nodes: Vec::new() }
    }

    /// Returns `true` for a scratch path that holds no route yet.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Mutable access to the backing node storage for the in-crate
    /// routing writers.
    pub(crate) fn nodes_mut(&mut self) -> &mut Vec<Coord> {
        &mut self.nodes
    }

    /// The node sequence.
    pub fn nodes(&self) -> &[Coord] {
        &self.nodes
    }

    /// First node.
    pub fn source(&self) -> Coord {
        self.nodes[0]
    }

    /// Last node.
    pub fn dest(&self) -> Coord {
        *self.nodes.last().expect("paths are non-empty")
    }

    /// Number of links the path occupies (0 for a scratch path).
    pub fn len_hops(&self) -> usize {
        self.nodes.len().saturating_sub(1)
    }

    /// Iterates over the links as `(from, to)` coordinate pairs.
    pub fn links(&self) -> impl Iterator<Item = (Coord, Coord)> + '_ {
        self.nodes.windows(2).map(|w| (w[0], w[1]))
    }

    /// Number of direction changes along the path (braid "turns", which
    /// cost extra lattice area in hand-optimized layouts; tracked for
    /// statistics).
    pub fn turns(&self) -> usize {
        self.nodes
            .windows(3)
            .filter(|w| {
                let d1 = (w[1].x as i64 - w[0].x as i64, w[1].y as i64 - w[0].y as i64);
                let d2 = (w[2].x as i64 - w[1].x as i64, w[2].y as i64 - w[1].y as i64);
                d1 != d2
            })
            .count()
    }
}

impl Default for Path {
    /// An empty scratch path; see [`Path::empty`].
    fn default() -> Self {
        Path::empty()
    }
}

impl fmt::Display for Path {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} -> {} ({} hops)",
            self.source(),
            self.dest(),
            self.len_hops()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn manhattan_distance() {
        assert_eq!(Coord::new(0, 0).manhattan(Coord::new(3, 4)), 7);
        assert_eq!(Coord::new(5, 5).manhattan(Coord::new(5, 5)), 0);
    }

    #[test]
    fn adjacency() {
        let c = Coord::new(2, 2);
        assert!(c.is_adjacent(Coord::new(1, 2)));
        assert!(c.is_adjacent(Coord::new(2, 3)));
        assert!(!c.is_adjacent(Coord::new(3, 3)));
        assert!(!c.is_adjacent(c));
    }

    #[test]
    fn path_accessors() {
        let p = Path::new(vec![
            Coord::new(0, 0),
            Coord::new(1, 0),
            Coord::new(1, 1),
            Coord::new(1, 2),
        ]);
        assert_eq!(p.len_hops(), 3);
        assert_eq!(p.source(), Coord::new(0, 0));
        assert_eq!(p.dest(), Coord::new(1, 2));
        assert_eq!(p.links().count(), 3);
        assert_eq!(p.turns(), 1);
    }

    #[test]
    fn single_node_path() {
        let p = Path::new(vec![Coord::new(4, 4)]);
        assert_eq!(p.len_hops(), 0);
        assert_eq!(p.turns(), 0);
        assert_eq!(p.links().count(), 0);
    }

    #[test]
    #[should_panic(expected = "non-adjacent")]
    fn rejects_gaps() {
        let _ = Path::new(vec![Coord::new(0, 0), Coord::new(2, 0)]);
    }

    #[test]
    #[should_panic(expected = "at least one node")]
    fn rejects_empty() {
        let _ = Path::new(vec![]);
    }

    #[test]
    fn empty_scratch_path() {
        let p = Path::empty();
        assert!(p.is_empty());
        assert_eq!(p.len_hops(), 0);
        assert_eq!(p.links().count(), 0);
        assert!(Path::default().is_empty());
    }

    #[test]
    fn zigzag_turn_count() {
        let p = Path::new(vec![
            Coord::new(0, 0),
            Coord::new(1, 0),
            Coord::new(1, 1),
            Coord::new(2, 1),
            Coord::new(2, 2),
        ]);
        assert_eq!(p.turns(), 3);
    }
}
