//! Per-link congestion snapshots of a [`Fabric`](crate::Fabric) run.
//!
//! A [`LinkHeatmap`] is the stable, geometry-aware export of what the
//! fabric measured: for every link of the [`Topology`], the cycles the
//! link spent busy carrying messages and the cycles messages spent
//! queued waiting for one of its lanes. It is the data product the
//! congestion-aware placement loop consumes — hot columns attract EPR
//! route demand, and the optimizer steers data tiles away from them.

use crate::coord::Coord;
use crate::topology::Topology;

/// Snapshot of per-link busy and stall cycles over a fabric run.
///
/// Links use the canonical [`Topology`] indexing (horizontal block
/// first, then vertical). The snapshot is immutable: taking one from a
/// running [`Fabric`](crate::Fabric) copies the counters, so later
/// simulation does not mutate it under the consumer.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LinkHeatmap {
    topo: Topology,
    /// Busy cycles per link (time spent carrying traversing messages).
    busy: Vec<u64>,
    /// Stall cycles per link (time messages queued for a free lane).
    stalls: Vec<u64>,
    /// Transient faults per link (hops that failed on a flaky link and
    /// were retried after backoff).
    faults: Vec<u64>,
}

impl LinkHeatmap {
    /// Builds a snapshot from raw per-link counters, with no recorded
    /// transient faults (a defect-free run).
    ///
    /// # Panics
    ///
    /// Panics if either slice length differs from `topo.num_links()`.
    pub fn new(topo: Topology, busy: Vec<u64>, stalls: Vec<u64>) -> Self {
        let faults = vec![0; topo.num_links()];
        Self::with_faults(topo, busy, stalls, faults)
    }

    /// Builds a snapshot that also carries per-link transient-fault
    /// counts from a fault-injected fabric run.
    ///
    /// # Panics
    ///
    /// Panics if any slice length differs from `topo.num_links()`.
    pub fn with_faults(topo: Topology, busy: Vec<u64>, stalls: Vec<u64>, faults: Vec<u64>) -> Self {
        assert_eq!(busy.len(), topo.num_links(), "busy counters per link");
        assert_eq!(stalls.len(), topo.num_links(), "stall counters per link");
        assert_eq!(faults.len(), topo.num_links(), "fault counters per link");
        LinkHeatmap {
            topo,
            busy,
            stalls,
            faults,
        }
    }

    /// The geometry the link indices refer to.
    pub fn topology(&self) -> Topology {
        self.topo
    }

    /// Busy cycles per link, canonical link order.
    pub fn busy_cycles(&self) -> &[u64] {
        &self.busy
    }

    /// Stall cycles per link, canonical link order.
    pub fn stall_cycles(&self) -> &[u64] {
        &self.stalls
    }

    /// Transient faults per link, canonical link order.
    pub fn fault_counts(&self) -> &[u64] {
        &self.faults
    }

    /// Total transient faults over all links.
    pub fn total_transient_faults(&self) -> u64 {
        self.faults.iter().sum()
    }

    /// Total stall cycles over all links.
    pub fn total_stall_cycles(&self) -> u64 {
        self.stalls.iter().sum()
    }

    /// Busy cycles on the hottest link.
    pub fn hottest_link_busy_cycles(&self) -> u64 {
        self.busy.iter().copied().max().unwrap_or(0)
    }

    /// Combined busy + stall load of the link between adjacent routers
    /// `a` and `b`.
    ///
    /// # Panics
    ///
    /// Panics if the routers are not adjacent or lie off the topology.
    pub fn link_load(&self, a: Coord, b: Coord) -> u64 {
        assert!(
            self.topo.contains(a) && self.topo.contains(b),
            "link endpoints must be on the topology"
        );
        let i = self.topo.link_index(a, b);
        self.busy[i] + self.stalls[i]
    }

    /// Combined busy + stall load over the vertical links of column `x`
    /// — the congestion an EPR half pays descending that column under
    /// dimension-ordered (X then Y) routing, which makes per-column
    /// load the natural placement signal.
    ///
    /// # Panics
    ///
    /// Panics if `x` is outside the topology.
    pub fn column_load(&self, x: u32) -> u64 {
        assert!(x < self.topo.width(), "column {x} off the topology");
        let h_links = self.topo.num_h_links();
        (0..self.topo.height().saturating_sub(1))
            .map(|y| {
                let i = h_links + self.topo.v_index(x, y);
                self.busy[i] + self.stalls[i]
            })
            .sum()
    }

    /// Combined busy + stall load over the horizontal links of row `y`.
    ///
    /// # Panics
    ///
    /// Panics if `y` is outside the topology.
    pub fn row_load(&self, y: u32) -> u64 {
        assert!(y < self.topo.height(), "row {y} off the topology");
        (0..self.topo.width().saturating_sub(1))
            .map(|x| {
                let i = self.topo.h_index(x, y);
                self.busy[i] + self.stalls[i]
            })
            .sum()
    }

    /// Columns ranked hottest-first by [`LinkHeatmap::column_load`],
    /// ties broken toward the lower column index (deterministic).
    pub fn columns_by_load_desc(&self) -> Vec<u32> {
        let mut cols: Vec<u32> = (0..self.topo.width()).collect();
        cols.sort_by_key(|&x| (std::cmp::Reverse(self.column_load(x)), x));
        cols
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn heatmap_3x3() -> LinkHeatmap {
        // 3x3: 6 horizontal links then 6 vertical links.
        let topo = Topology::new(3, 3);
        let mut busy = vec![0u64; topo.num_links()];
        let mut stalls = vec![0u64; topo.num_links()];
        // Vertical links of column 1: (1,0)->(1,1) and (1,1)->(1,2).
        busy[6 + 1] = 10;
        stalls[6 + 1] = 4;
        busy[6 + 4] = 7;
        // One horizontal link on row 0: (0,0)->(1,0).
        busy[0] = 3;
        LinkHeatmap::new(topo, busy, stalls)
    }

    #[test]
    fn column_and_row_loads_aggregate_links() {
        let h = heatmap_3x3();
        assert_eq!(h.column_load(1), 10 + 4 + 7);
        assert_eq!(h.column_load(0), 0);
        assert_eq!(h.row_load(0), 3);
        assert_eq!(h.row_load(2), 0);
        assert_eq!(h.total_stall_cycles(), 4);
        assert_eq!(h.hottest_link_busy_cycles(), 10);
    }

    #[test]
    fn link_load_reads_single_links() {
        let h = heatmap_3x3();
        assert_eq!(h.link_load(Coord::new(1, 0), Coord::new(1, 1)), 14);
        assert_eq!(h.link_load(Coord::new(0, 0), Coord::new(1, 0)), 3);
        assert_eq!(h.link_load(Coord::new(2, 1), Coord::new(2, 2)), 0);
    }

    #[test]
    fn columns_rank_hottest_first_with_deterministic_ties() {
        let h = heatmap_3x3();
        assert_eq!(h.columns_by_load_desc(), vec![1, 0, 2]);
    }

    #[test]
    #[should_panic(expected = "per link")]
    fn mismatched_counter_length_rejected() {
        let topo = Topology::new(3, 3);
        let _ = LinkHeatmap::new(topo, vec![0; 3], vec![0; topo.num_links()]);
    }

    #[test]
    fn fault_counters_ride_along() {
        let topo = Topology::new(3, 3);
        let zero = vec![0u64; topo.num_links()];
        let mut faults = zero.clone();
        faults[2] = 5;
        let h = LinkHeatmap::with_faults(topo, zero.clone(), zero.clone(), faults);
        assert_eq!(h.total_transient_faults(), 5);
        assert_eq!(h.fault_counts()[2], 5);
        // The defect-free constructor reports zero faults.
        let clean = LinkHeatmap::new(topo, zero.clone(), zero);
        assert_eq!(clean.total_transient_faults(), 0);
    }

    #[test]
    #[should_panic(expected = "fault counters per link")]
    fn mismatched_fault_length_rejected() {
        let topo = Topology::new(3, 3);
        let zero = vec![0u64; topo.num_links()];
        let _ = LinkHeatmap::with_faults(topo, zero.clone(), zero, vec![0; 2]);
    }
}
