//! The circuit-switched mesh: atomic path claims, routing, utilization.

use std::collections::VecDeque;

use crate::coord::{Coord, Path};
use crate::defect::DefectMap;
use crate::topology::{DimOrder, Topology};

/// Identifier of a path owner (one braid or message).
pub type ClaimId = u32;

const FREE: ClaimId = ClaimId::MAX;

/// Reserved owner marking fabrication defects ([`Mesh::with_defects`]):
/// dead routers and links are claimed by this sentinel forever, so every
/// claim walk, probe, and adaptive search treats them as permanently
/// occupied without any defect-specific logic.
const DEFECT: ClaimId = ClaimId::MAX - 1;

/// Reusable buffers for [`Mesh::route_adaptive_into`].
///
/// The adaptive BFS needs per-node predecessor and visited arrays plus a
/// frontier queue; allocating them per call dominates the cost of short
/// searches. One `RouteScratch` amortizes those allocations across every
/// adaptive routing attempt of a scheduling run. Visited state is
/// invalidated by a generation stamp, so reuse never requires clearing
/// the arrays.
#[derive(Clone, Debug, Default)]
pub struct RouteScratch {
    /// BFS predecessor per node index (valid only when stamped).
    prev: Vec<u32>,
    /// Generation stamp per node index; equal to `stamp` means visited.
    seen: Vec<u64>,
    /// Current search generation.
    stamp: u64,
    /// BFS frontier of flat node indices.
    queue: VecDeque<u32>,
}

impl RouteScratch {
    /// Creates an empty scratch; buffers grow to the mesh size on first
    /// use.
    pub fn new() -> Self {
        RouteScratch::default()
    }

    fn begin(&mut self, nodes: usize) {
        if self.prev.len() < nodes {
            self.prev.resize(nodes, u32::MAX);
            self.seen.resize(nodes, 0);
        }
        self.stamp += 1;
        self.queue.clear();
    }
}

/// Claimed-interval summary of one router row or column.
///
/// Part of the mesh's occupancy index: every row and every column keeps
/// the number of claimed routers on it and the interval `[min, max]`
/// that bounds them. The summaries are updated incrementally on the
/// claim and release paths and power the conservative
/// `*_certainly_blocked` congestion probes.
#[derive(Clone, Copy, Debug, Default)]
struct LineSummary {
    /// Claimed routers on this line.
    count: u32,
    /// Smallest claimed position along the line (valid when `count > 0`).
    min: u32,
    /// Largest claimed position along the line (valid when `count > 0`).
    max: u32,
}

impl LineSummary {
    /// `true` if the summary proves some claimed router lies in
    /// `[lo, hi]` on a line of `len` routers. Never returns `true`
    /// speculatively: a `false` only means the summary cannot tell.
    fn certainly_claims_in(&self, lo: u32, hi: u32, len: u32) -> bool {
        debug_assert!(
            lo <= hi && hi < len,
            "span [{lo}, {hi}] not on a line of {len}"
        );
        if self.count == 0 {
            return false;
        }
        if (self.min >= lo && self.min <= hi) || (self.max >= lo && self.max <= hi) {
            return true;
        }
        // Pigeonhole: more claimed routers than positions outside the
        // span means at least one must sit inside it.
        self.count > len - (hi - lo + 1)
    }

    /// Removes the claimed position `pos` from the summary. When `pos`
    /// carried the line's `min` or `max`, the boundary walks inward via
    /// `claimed_at` to the next claimed position — O(gap), and O(1)
    /// amortized when a path's contiguous run is released node by node.
    fn release(&mut self, pos: u32, claimed_at: impl Fn(u32) -> bool) {
        self.count -= 1;
        if self.count > 0 {
            if pos == self.min {
                self.min = (self.min + 1..=self.max)
                    .find(|&p| claimed_at(p))
                    .expect("count > 0");
            } else if pos == self.max {
                self.max = (self.min..self.max)
                    .rev()
                    .find(|&p| claimed_at(p))
                    .expect("count > 0");
            }
        }
    }
}

/// A 2D circuit-switched mesh of routers and links.
///
/// This models the braid fabric of the paper's Section 6.1: a braid is a
/// *message* that claims an entire route — every link **and** every
/// router on it — atomically in one cycle, holds it while syndrome
/// measurements stabilize, and releases it when it closes. Because two
/// defects cannot coexist nearby, there are no buffers and no virtual
/// channels: a route is either entirely free or unusable
/// ("braids differ from conventional messages": (a)-(d) in the paper).
///
/// The mesh also keeps the utilization statistics reported in Figure 6
/// (red curve): call [`Mesh::tick`] once per simulated cycle.
///
/// # Examples
///
/// ```
/// use scq_mesh::{Coord, Mesh};
///
/// let mut mesh = Mesh::new(4, 4);
/// let path = mesh.route_xy(Coord::new(0, 0), Coord::new(3, 2));
/// assert!(mesh.try_claim(&path, 7));
/// // The same corridor is now unavailable to a second braid.
/// assert!(!mesh.try_claim(&path, 8));
/// mesh.release(&path, 7);
/// assert!(mesh.try_claim(&path, 8));
/// ```
#[derive(Clone, Debug)]
pub struct Mesh {
    topo: Topology,
    /// Horizontal link (x, y) connects (x, y) and (x+1, y); `(width-1) * height`.
    h_links: Vec<ClaimId>,
    /// Vertical link (x, y) connects (x, y) and (x, y+1); `width * (height-1)`.
    v_links: Vec<ClaimId>,
    /// Router occupancy.
    nodes: Vec<ClaimId>,
    busy_links: usize,
    /// Accumulated busy-link-cycles for utilization.
    busy_link_cycles: u64,
    ticks: u64,
    /// Occupancy index: claimed-interval summary per router row
    /// (indexed by `y`, positions along the line are `x`).
    rows: Vec<LineSummary>,
    /// Occupancy index: claimed-interval summary per router column
    /// (indexed by `x`, positions along the line are `y`).
    cols: Vec<LineSummary>,
    /// Whether the occupancy index is live. The index starts dormant —
    /// uncontended runs never fail a claim, so they never pay its
    /// upkeep — and is built (one O(nodes) sweep) on the first claim
    /// failure, after which claim/release maintain it incrementally.
    index_active: bool,
}

impl Mesh {
    /// Creates an idle `width x height` router mesh.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn new(width: u32, height: u32) -> Self {
        let topo = Topology::new(width, height);
        Mesh {
            topo,
            h_links: vec![FREE; topo.num_h_links()],
            v_links: vec![FREE; topo.num_v_links()],
            nodes: vec![FREE; topo.num_nodes()],
            busy_links: 0,
            busy_link_cycles: 0,
            ticks: 0,
            rows: vec![LineSummary::default(); topo.height() as usize],
            cols: vec![LineSummary::default(); topo.width() as usize],
            index_active: false,
        }
    }

    /// Creates a `width x height` router mesh whose defective resources
    /// (per `defects`) are permanently claimed by the reserved `DEFECT`
    /// sentinel. Claims, probes, and adaptive routing all treat them as
    /// occupied forever; they are never released, and they do not count
    /// toward [`Mesh::busy_links`] or [`Mesh::utilization`], which stay
    /// traffic-only. With an empty map this is exactly [`Mesh::new`].
    ///
    /// Flaky links are a transient-fault concept of the packet
    /// [`Fabric`](crate::Fabric); the circuit-switched mesh ignores
    /// them (a braid holds its route for a full error-correction cycle,
    /// which absorbs transient link faults by construction).
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero or the map's topology is not
    /// `width x height`.
    pub fn with_defects(width: u32, height: u32, defects: &DefectMap) -> Self {
        let mut mesh = Mesh::new(width, height);
        let map_topo = defects.topology();
        assert!(
            map_topo.width() == width && map_topo.height() == height,
            "defect map is {}x{} but the mesh is {width}x{height}",
            map_topo.width(),
            map_topo.height()
        );
        for i in 0..mesh.nodes.len() {
            if defects.node_dead_idx(i) {
                mesh.nodes[i] = DEFECT;
            }
        }
        let num_h = mesh.topo.num_h_links();
        for i in 0..mesh.h_links.len() {
            if defects.link_dead_idx(i) {
                mesh.h_links[i] = DEFECT;
            }
        }
        for i in 0..mesh.v_links.len() {
            if defects.link_dead_idx(num_h + i) {
                mesh.v_links[i] = DEFECT;
            }
        }
        mesh
    }

    /// Returns `true` if the router at `c` is a fabrication defect
    /// (dead per the [`DefectMap`] this mesh was built with).
    ///
    /// # Panics
    ///
    /// Panics if `c` is off the mesh.
    pub fn node_defective(&self, c: Coord) -> bool {
        assert!(
            self.contains(c),
            "node {c} outside {}x{} mesh",
            self.width(),
            self.height()
        );
        self.nodes[self.node_index(c)] == DEFECT
    }

    /// Whether the occupancy index is currently live. Dormant until the
    /// first claim failure (see [`Mesh::ensure_occupancy_index`]).
    pub fn occupancy_index_active(&self) -> bool {
        self.index_active
    }

    /// Activates the occupancy index if it is still dormant, rebuilding
    /// the per-row/column claimed-interval summaries from the current
    /// node occupancy in one O(nodes) sweep.
    ///
    /// The mesh calls this itself on the first failed claim — the
    /// earliest evidence of contention, which is the only regime where
    /// the index's `*_certainly_blocked` probes earn their upkeep.
    /// Callers that know a run will be contended may invoke it up front.
    pub fn ensure_occupancy_index(&mut self) {
        if self.index_active {
            return;
        }
        self.index_active = true;
        let (w, h) = (self.topo.width(), self.topo.height());
        for y in 0..h {
            for x in 0..w {
                if self.nodes[(y * w + x) as usize] != FREE {
                    self.index_claim(Coord::new(x, y));
                }
            }
        }
    }

    /// The underlying geometry, shared with the packet-style
    /// [`Fabric`](crate::Fabric) layer.
    pub fn topology(&self) -> Topology {
        self.topo
    }

    /// Mesh width in routers.
    pub fn width(&self) -> u32 {
        self.topo.width()
    }

    /// Mesh height in routers.
    pub fn height(&self) -> u32 {
        self.topo.height()
    }

    /// Total number of links.
    pub fn num_links(&self) -> usize {
        self.topo.num_links()
    }

    /// Number of currently claimed links.
    pub fn busy_links(&self) -> usize {
        self.busy_links
    }

    /// Returns `true` if `c` lies on the mesh.
    pub fn contains(&self, c: Coord) -> bool {
        self.topo.contains(c)
    }

    fn h_index(&self, x: u32, y: u32) -> usize {
        self.topo.h_index(x, y)
    }

    fn v_index(&self, x: u32, y: u32) -> usize {
        self.topo.v_index(x, y)
    }

    fn node_index(&self, c: Coord) -> usize {
        self.topo.node_index(c)
    }

    fn link_slot(&mut self, a: Coord, b: Coord) -> &mut ClaimId {
        debug_assert!(a.is_adjacent(b), "link endpoints must be adjacent");
        if a.y == b.y {
            let x = a.x.min(b.x);
            let i = self.h_index(x, a.y);
            &mut self.h_links[i]
        } else {
            let y = a.y.min(b.y);
            let i = self.v_index(a.x, y);
            &mut self.v_links[i]
        }
    }

    fn link_owner(&self, a: Coord, b: Coord) -> ClaimId {
        if a.y == b.y {
            self.h_links[self.h_index(a.x.min(b.x), a.y)]
        } else {
            self.v_links[self.v_index(a.x, a.y.min(b.y))]
        }
    }

    /// Marks node `c` claimed in place, updating the occupancy index
    /// when it is live. Idempotent re-claims (node already owned) touch
    /// nothing.
    fn set_node_claimed(&mut self, c: Coord, owner: ClaimId) {
        let i = self.node_index(c);
        if self.nodes[i] != FREE {
            debug_assert_eq!(self.nodes[i], owner, "claim over a foreign node");
            return;
        }
        self.nodes[i] = owner;
        if self.index_active {
            self.index_claim(c);
        }
    }

    /// Records node `c` in the row/column claimed-interval summaries.
    /// Only called while the index is live (or while rebuilding it).
    fn index_claim(&mut self, c: Coord) {
        let row = &mut self.rows[c.y as usize];
        if row.count == 0 {
            (row.min, row.max) = (c.x, c.x);
        } else {
            row.min = row.min.min(c.x);
            row.max = row.max.max(c.x);
        }
        row.count += 1;
        let col = &mut self.cols[c.x as usize];
        if col.count == 0 {
            (col.min, col.max) = (c.y, c.y);
        } else {
            col.min = col.min.min(c.y);
            col.max = col.max.max(c.y);
        }
        col.count += 1;
    }

    /// Marks node `c` free, updating the occupancy index when it is
    /// live (see [`LineSummary::release`]).
    fn set_node_free(&mut self, c: Coord) {
        let i = self.node_index(c);
        debug_assert_ne!(self.nodes[i], FREE, "releasing a free node");
        self.nodes[i] = FREE;
        if !self.index_active {
            return;
        }
        let w = self.topo.width();
        let Self {
            nodes, rows, cols, ..
        } = self;
        let base = (c.y * w) as usize;
        rows[c.y as usize].release(c.x, |x| nodes[base + x as usize] != FREE);
        cols[c.x as usize].release(c.y, |y| nodes[(y * w + c.x) as usize] != FREE);
    }

    /// Returns `true` if every node and link of `path` is unclaimed (or
    /// already claimed by `owner`, making re-claims idempotent).
    ///
    /// # Panics
    ///
    /// Panics if the path leaves the mesh.
    pub fn is_path_free(&self, path: &Path, owner: ClaimId) -> bool {
        for &n in path.nodes() {
            assert!(
                self.contains(n),
                "path node {n} outside {}x{} mesh",
                self.width(),
                self.height()
            );
            let o = self.nodes[self.node_index(n)];
            if o != FREE && o != owner {
                return false;
            }
        }
        for (a, b) in path.links() {
            let o = self.link_owner(a, b);
            if o != FREE && o != owner {
                return false;
            }
        }
        true
    }

    /// Atomically claims every node and link of `path` for `owner`.
    ///
    /// Returns `false` (claiming nothing) if any resource is held by a
    /// different owner — the braid cannot open this cycle.
    ///
    /// # Panics
    ///
    /// Panics if the path leaves the mesh or `owner` is one of the
    /// reserved sentinels (`ClaimId::MAX` is reserved for free slots,
    /// `ClaimId::MAX - 1` marks defects).
    pub fn try_claim(&mut self, path: &Path, owner: ClaimId) -> bool {
        assert!(
            owner < DEFECT,
            "ClaimId::MAX is reserved (and ClaimId::MAX - 1 marks defects)"
        );
        if !self.is_path_free(path, owner) {
            // First evidence of contention: from here on the occupancy
            // index earns its upkeep, so bring it live.
            self.ensure_occupancy_index();
            return false;
        }
        for &n in path.nodes() {
            self.set_node_claimed(n, owner);
        }
        for (a, b) in path.links() {
            let slot = self.link_slot(a, b);
            if *slot == FREE {
                *slot = owner;
                self.busy_links += 1;
            }
        }
        true
    }

    /// Releases a previously claimed path.
    ///
    /// # Panics
    ///
    /// Panics if any resource on the path is not held by `owner` —
    /// releasing someone else's braid is always a scheduler bug.
    pub fn release(&mut self, path: &Path, owner: ClaimId) {
        for &n in path.nodes() {
            let i = self.node_index(n);
            assert_eq!(self.nodes[i], owner, "node {n} not owned by {owner}");
            self.set_node_free(n);
        }
        for (a, b) in path.links() {
            let slot = self.link_slot(a, b);
            assert_eq!(*slot, owner, "link not owned by {owner}");
            *slot = FREE;
            self.busy_links -= 1;
        }
    }

    /// Returns `true` if the router at `c` is currently claimed.
    ///
    /// # Panics
    ///
    /// Panics if `c` is off the mesh.
    pub fn node_claimed(&self, c: Coord) -> bool {
        assert!(
            self.contains(c),
            "node {c} outside {}x{} mesh",
            self.width(),
            self.height()
        );
        self.nodes[self.node_index(c)] != FREE
    }

    /// Claimed positions along row `y` — the dormant-index fallback
    /// scan behind the public line accessors.
    fn row_claimed_positions(&self, y: u32) -> impl DoubleEndedIterator<Item = u32> + '_ {
        (0..self.width()).filter(move |&x| self.node_claimed(Coord::new(x, y)))
    }

    /// Claimed positions along column `x`; see
    /// [`Mesh::row_claimed_positions`].
    fn col_claimed_positions(&self, x: u32) -> impl DoubleEndedIterator<Item = u32> + '_ {
        (0..self.height()).filter(move |&y| self.node_claimed(Coord::new(x, y)))
    }

    /// Bounding `[min, max]` of a claimed-position scan, or `None` when
    /// the line is idle.
    fn scan_interval(mut positions: impl DoubleEndedIterator<Item = u32>) -> Option<(u32, u32)> {
        let lo = positions.next()?;
        Some((lo, positions.next_back().unwrap_or(lo)))
    }

    /// Number of claimed routers on row `y` — O(1) from the occupancy
    /// index when it is live, one O(width) scan while it is dormant.
    ///
    /// # Panics
    ///
    /// Panics if `y` is outside the mesh.
    pub fn row_claimed_count(&self, y: u32) -> u32 {
        assert!(
            y < self.height(),
            "row {y} outside height {}",
            self.height()
        );
        if !self.index_active {
            return self.row_claimed_positions(y).count() as u32;
        }
        self.rows[y as usize].count
    }

    /// Number of claimed routers on column `x` — O(1) from the
    /// occupancy index when it is live, one O(height) scan while it is
    /// dormant.
    ///
    /// # Panics
    ///
    /// Panics if `x` is outside the mesh.
    pub fn col_claimed_count(&self, x: u32) -> u32 {
        assert!(
            x < self.width(),
            "column {x} outside width {}",
            self.width()
        );
        if !self.index_active {
            return self.col_claimed_positions(x).count() as u32;
        }
        self.cols[x as usize].count
    }

    /// The `[min, max]` x-interval bounding row `y`'s claimed routers,
    /// or `None` when the row is idle. O(1) from the occupancy index
    /// when it is live, one O(width) scan while it is dormant.
    ///
    /// # Panics
    ///
    /// Panics if `y` is outside the mesh.
    pub fn row_claimed_interval(&self, y: u32) -> Option<(u32, u32)> {
        assert!(
            y < self.height(),
            "row {y} outside height {}",
            self.height()
        );
        if !self.index_active {
            return Self::scan_interval(self.row_claimed_positions(y));
        }
        let row = &self.rows[y as usize];
        (row.count > 0).then_some((row.min, row.max))
    }

    /// The `[min, max]` y-interval bounding column `x`'s claimed
    /// routers, or `None` when the column is idle. O(1) from the
    /// occupancy index when it is live, one O(height) scan while it is
    /// dormant.
    ///
    /// # Panics
    ///
    /// Panics if `x` is outside the mesh.
    pub fn col_claimed_interval(&self, x: u32) -> Option<(u32, u32)> {
        assert!(
            x < self.width(),
            "column {x} outside width {}",
            self.width()
        );
        if !self.index_active {
            return Self::scan_interval(self.col_claimed_positions(x));
        }
        let col = &self.cols[x as usize];
        (col.count > 0).then_some((col.min, col.max))
    }

    /// Conservative congestion probe: `true` proves the dimension-ordered
    /// X-then-Y walk `src -> dst` cannot be claimed *by a claimant that
    /// currently holds no mesh resources* — some router on the walk is
    /// certainly claimed. `false` promises nothing.
    ///
    /// The probe reads only the per-line claimed-interval summaries of
    /// row `src.y` and column `dst.x` (O(1)), never the walk itself. It
    /// is exactly conservative: whenever it returns `true`,
    /// [`Mesh::claim_route_xy_into`] would return `false` for any owner
    /// holding nothing, because a claimed link always comes with its
    /// claimed endpoint routers.
    ///
    /// While the occupancy index is dormant (no claim has failed yet —
    /// see [`Mesh::ensure_occupancy_index`]) only the exact endpoint
    /// checks can fire; the corridor proofs need the live summaries.
    /// That weakens the verdict, never its soundness.
    ///
    /// # Panics
    ///
    /// Panics if either endpoint is off the mesh.
    pub fn xy_certainly_blocked(&self, src: Coord, dst: Coord) -> bool {
        assert!(
            self.contains(src) && self.contains(dst),
            "endpoints must be on the mesh"
        );
        if self.node_claimed(src) || self.node_claimed(dst) {
            return true;
        }
        let (x_lo, x_hi) = (src.x.min(dst.x), src.x.max(dst.x));
        let (y_lo, y_hi) = (src.y.min(dst.y), src.y.max(dst.y));
        self.rows[src.y as usize].certainly_claims_in(x_lo, x_hi, self.width())
            || self.cols[dst.x as usize].certainly_claims_in(y_lo, y_hi, self.height())
    }

    /// Y-then-X counterpart of [`Mesh::xy_certainly_blocked`]: probes
    /// column `src.x` and row `dst.y`.
    ///
    /// # Panics
    ///
    /// Panics if either endpoint is off the mesh.
    pub fn yx_certainly_blocked(&self, src: Coord, dst: Coord) -> bool {
        // The Y-then-X walk src -> dst traverses column src.x then row
        // dst.y — exactly the X-then-Y walk dst -> src.
        self.xy_certainly_blocked(dst, src)
    }

    /// Conservative congestion probe for *any* route: `true` proves no
    /// path whatsoever — dimension-ordered or adaptive — can connect
    /// `src` and `dst` for a claimant that currently holds no mesh
    /// resources. Either an endpoint router is claimed, or a fully
    /// claimed row or column strictly between the endpoints separates
    /// them (every unit-step path must cross it on a claimed router).
    ///
    /// `false` promises nothing; [`Mesh::route_adaptive_into`] may still
    /// fail. While the occupancy index is dormant, only the endpoint
    /// and enclosure checks can fire (see [`Mesh::xy_certainly_blocked`]).
    ///
    /// # Panics
    ///
    /// Panics if either endpoint is off the mesh.
    pub fn route_certainly_blocked(&self, src: Coord, dst: Coord) -> bool {
        if self.node_claimed(src) || self.node_claimed(dst) {
            return true;
        }
        if src != dst && (self.endpoint_enclosed(src) || self.endpoint_enclosed(dst)) {
            return true;
        }
        let (y_lo, y_hi) = (src.y.min(dst.y), src.y.max(dst.y));
        if (y_lo + 1..y_hi).any(|y| self.rows[y as usize].count == self.width()) {
            return true;
        }
        let (x_lo, x_hi) = (src.x.min(dst.x), src.x.max(dst.x));
        (x_lo + 1..x_hi).any(|x| self.cols[x as usize].count == self.height())
    }

    /// `true` when every exit of router `c` is shut — each neighbor is
    /// claimed or the connecting link is. A free route of length >= 1
    /// must leave through one of them, so an enclosed endpoint is
    /// provably unroutable (the common local-congestion failure).
    fn endpoint_enclosed(&self, c: Coord) -> bool {
        let exit_open =
            |n: Coord| self.nodes[self.node_index(n)] == FREE && self.link_owner(c, n) == FREE;
        !((c.x + 1 < self.width() && exit_open(Coord::new(c.x + 1, c.y)))
            || (c.x > 0 && exit_open(Coord::new(c.x - 1, c.y)))
            || (c.y + 1 < self.height() && exit_open(Coord::new(c.x, c.y + 1)))
            || (c.y > 0 && exit_open(Coord::new(c.x, c.y - 1))))
    }

    /// Dimension-ordered (X then Y) route between two routers.
    ///
    /// # Panics
    ///
    /// Panics if either endpoint is off the mesh.
    pub fn route_xy(&self, src: Coord, dst: Coord) -> Path {
        let mut out = Path::empty();
        self.route_xy_into(src, dst, &mut out);
        out
    }

    /// Like [`Mesh::route_xy`], writing the route into `out` instead of
    /// allocating — the scratch-buffer variant for hot loops.
    ///
    /// # Panics
    ///
    /// As [`Mesh::route_xy`].
    pub fn route_xy_into(&self, src: Coord, dst: Coord, out: &mut Path) {
        self.topo
            .route_dim_ordered_into(src, dst, DimOrder::XThenY, out);
    }

    /// Dimension-ordered (Y then X) route between two routers.
    ///
    /// # Panics
    ///
    /// Panics if either endpoint is off the mesh.
    pub fn route_yx(&self, src: Coord, dst: Coord) -> Path {
        let mut out = Path::empty();
        self.route_yx_into(src, dst, &mut out);
        out
    }

    /// Like [`Mesh::route_yx`], writing the route into `out` instead of
    /// allocating.
    ///
    /// # Panics
    ///
    /// As [`Mesh::route_yx`].
    pub fn route_yx_into(&self, src: Coord, dst: Coord, out: &mut Path) {
        self.topo
            .route_dim_ordered_into(src, dst, DimOrder::YThenX, out);
    }

    fn claim_route_dim_ordered_into(
        &mut self,
        src: Coord,
        dst: Coord,
        order: DimOrder,
        owner: ClaimId,
        out: &mut Path,
    ) -> bool {
        assert!(
            self.contains(src) && self.contains(dst),
            "endpoints must be on the mesh"
        );
        assert!(
            owner < DEFECT,
            "ClaimId::MAX is reserved (and ClaimId::MAX - 1 marks defects)"
        );
        // Pass 1: availability check in place, touching nothing.
        let mut last: Option<Coord> = None;
        let free = Topology::walk_dim_ordered(src, dst, order, |c| {
            let node_owner = self.nodes[self.node_index(c)];
            if node_owner != FREE && node_owner != owner {
                return false;
            }
            if let Some(prev) = last {
                let link_owner = self.link_owner(prev, c);
                if link_owner != FREE && link_owner != owner {
                    return false;
                }
            }
            last = Some(c);
            true
        });
        if !free {
            self.ensure_occupancy_index();
            return false;
        }
        // Pass 2: claim every resource and materialize the path.
        let nodes_out = out.nodes_mut();
        nodes_out.clear();
        let mut last: Option<Coord> = None;
        Topology::walk_dim_ordered(src, dst, order, |c| {
            self.set_node_claimed(c, owner);
            if let Some(prev) = last {
                let slot = self.link_slot(prev, c);
                if *slot == FREE {
                    *slot = owner;
                    self.busy_links += 1;
                }
            }
            nodes_out.push(c);
            last = Some(c);
            true
        });
        true
    }

    /// Fused route-and-claim along the dimension-ordered X-then-Y walk:
    /// checks every router and link of the route in place and claims the
    /// whole route atomically, writing it into `out`, without ever
    /// materializing a rejected route.
    ///
    /// Exactly equivalent to `route_xy` followed by [`Mesh::try_claim`],
    /// but allocation-free on the (common, under contention) failure
    /// path. Returns `false` and claims nothing if any resource is held
    /// by a different owner; `out` is unspecified in that case.
    ///
    /// # Panics
    ///
    /// Panics if either endpoint is off the mesh or `owner` is the
    /// reserved sentinel `ClaimId::MAX`.
    pub fn claim_route_xy_into(
        &mut self,
        src: Coord,
        dst: Coord,
        owner: ClaimId,
        out: &mut Path,
    ) -> bool {
        self.claim_route_dim_ordered_into(src, dst, DimOrder::XThenY, owner, out)
    }

    /// Allocating convenience wrapper over [`Mesh::claim_route_xy_into`].
    ///
    /// # Panics
    ///
    /// As [`Mesh::claim_route_xy_into`].
    pub fn claim_route_xy(&mut self, src: Coord, dst: Coord, owner: ClaimId) -> Option<Path> {
        let mut out = Path::empty();
        self.claim_route_xy_into(src, dst, owner, &mut out)
            .then_some(out)
    }

    /// Fused route-and-claim along the Y-then-X walk; see
    /// [`Mesh::claim_route_xy_into`].
    ///
    /// # Panics
    ///
    /// As [`Mesh::claim_route_xy_into`].
    pub fn claim_route_yx_into(
        &mut self,
        src: Coord,
        dst: Coord,
        owner: ClaimId,
        out: &mut Path,
    ) -> bool {
        self.claim_route_dim_ordered_into(src, dst, DimOrder::YThenX, owner, out)
    }

    /// Allocating convenience wrapper over [`Mesh::claim_route_yx_into`].
    ///
    /// # Panics
    ///
    /// As [`Mesh::claim_route_yx_into`].
    pub fn claim_route_yx(&mut self, src: Coord, dst: Coord, owner: ClaimId) -> Option<Path> {
        let mut out = Path::empty();
        self.claim_route_yx_into(src, dst, owner, &mut out)
            .then_some(out)
    }

    /// Shortest route from `src` to `dst` using only currently-free
    /// resources (the adaptive escape route of Section 6.1's "route
    /// adaptivity ... after certain timeouts"). Returns `None` when the
    /// congestion leaves no free corridor.
    ///
    /// Resources held by `owner` itself count as free, so a braid may
    /// re-route over its own footprint.
    ///
    /// # Panics
    ///
    /// Panics if either endpoint is off the mesh.
    pub fn route_adaptive(&self, src: Coord, dst: Coord, owner: ClaimId) -> Option<Path> {
        let mut scratch = RouteScratch::new();
        let mut out = Path::empty();
        self.route_adaptive_into(src, dst, owner, &mut scratch, &mut out)
            .then_some(out)
    }

    /// Like [`Mesh::route_adaptive`], reusing the caller's BFS buffers
    /// and writing the route into `out` — the allocation-free variant
    /// for hot scheduling loops. Returns `false` (leaving `out`
    /// unspecified) when no free corridor exists.
    ///
    /// # Panics
    ///
    /// Panics if either endpoint is off the mesh.
    pub fn route_adaptive_into(
        &self,
        src: Coord,
        dst: Coord,
        owner: ClaimId,
        scratch: &mut RouteScratch,
        out: &mut Path,
    ) -> bool {
        assert!(
            self.contains(src) && self.contains(dst),
            "endpoints must be on the mesh"
        );
        let free_node = |i: usize| {
            let o = self.nodes[i];
            o == FREE || o == owner
        };
        if !free_node(self.node_index(src)) || !free_node(self.node_index(dst)) {
            return false;
        }
        // BFS over free links/nodes; deterministic neighbor order
        // (east, west, south, north) keeps results reproducible. The
        // flood is the hot loop of contention-bound scheduling runs, so
        // it works on flat node indices: neighbors are `i ± 1` /
        // `i ± width`, the vertical link below node `i` is `v_links[i]`,
        // and the horizontal link east of it is `h_links[i - y]`.
        let (w, h) = (self.width() as usize, self.height() as usize);
        let n = w * h;
        scratch.begin(n);
        let stamp = scratch.stamp;
        let free_link = |slot: ClaimId| slot == FREE || slot == owner;
        let dst_i = self.node_index(dst);
        let src_i = self.node_index(src);
        scratch.seen[src_i] = stamp;
        scratch.queue.push_back(src_i as u32);
        'bfs: while let Some(cur) = scratch.queue.pop_front() {
            let cur = cur as usize;
            let (x, y) = (cur % w, cur / w);
            // (neighbor index, link slot), in east/west/south/north order.
            let neighbors = [
                (x + 1 < w).then(|| (cur + 1, self.h_links[cur - y])),
                (x > 0).then(|| (cur - 1, self.h_links[cur - y - 1])),
                (y + 1 < h).then(|| (cur + w, self.v_links[cur])),
                (y > 0).then(|| (cur - w, self.v_links[cur - w])),
            ];
            for (i, link) in neighbors.into_iter().flatten() {
                if scratch.seen[i] == stamp || !free_node(i) || !free_link(link) {
                    continue;
                }
                scratch.seen[i] = stamp;
                scratch.prev[i] = cur as u32;
                if i == dst_i {
                    break 'bfs;
                }
                scratch.queue.push_back(i as u32);
            }
        }
        if scratch.seen[dst_i] != stamp {
            return false;
        }
        let nodes = out.nodes_mut();
        nodes.clear();
        nodes.push(dst);
        let mut cur = dst;
        let width = self.width();
        while cur != src {
            let p = scratch.prev[self.node_index(cur)];
            cur = Coord::new(p % width, p / width);
            nodes.push(cur);
        }
        nodes.reverse();
        true
    }

    /// Advances the utilization clock by one cycle, accumulating the
    /// current busy-link count.
    pub fn tick(&mut self) {
        self.busy_link_cycles += self.busy_links as u64;
        self.ticks += 1;
    }

    /// Advances the utilization clock by `k` cycles in one step —
    /// equivalent to calling [`Mesh::tick`] `k` times while no claims or
    /// releases happen in between. This is what lets an event-driven
    /// scheduler jump straight to the next wake time instead of spinning
    /// one cycle at a time.
    pub fn tick_n(&mut self, k: u64) {
        self.busy_link_cycles += self.busy_links as u64 * k;
        self.ticks += k;
    }

    /// Average fraction of busy links over all ticked cycles — the
    /// "Average Mesh Utilization" metric of Figure 6.
    pub fn utilization(&self) -> f64 {
        if self.ticks == 0 || self.num_links() == 0 {
            return 0.0;
        }
        self.busy_link_cycles as f64 / (self.ticks as f64 * self.num_links() as f64)
    }

    /// Cycles ticked so far.
    pub fn ticks(&self) -> u64 {
        self.ticks
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn link_count() {
        let m = Mesh::new(4, 3);
        // Horizontal: 3*3 = 9; vertical: 4*2 = 8.
        assert_eq!(m.num_links(), 17);
    }

    #[test]
    fn xy_and_yx_routes() {
        let m = Mesh::new(5, 5);
        let xy = m.route_xy(Coord::new(0, 0), Coord::new(3, 2));
        assert_eq!(xy.len_hops(), 5);
        assert_eq!(xy.nodes()[1], Coord::new(1, 0));
        let yx = m.route_yx(Coord::new(0, 0), Coord::new(3, 2));
        assert_eq!(yx.len_hops(), 5);
        assert_eq!(yx.nodes()[1], Coord::new(0, 1));
    }

    #[test]
    fn claims_are_atomic() {
        let mut m = Mesh::new(4, 4);
        let p1 = m.route_xy(Coord::new(0, 0), Coord::new(3, 0));
        assert!(m.try_claim(&p1, 1));
        // A crossing path shares node (2,0): claim must fail and leave
        // no partial claims.
        let p2 = m.route_xy(Coord::new(2, 0), Coord::new(2, 3));
        let busy_before = m.busy_links();
        assert!(!m.try_claim(&p2, 2));
        assert_eq!(m.busy_links(), busy_before);
        // A disjoint path succeeds.
        let p3 = m.route_xy(Coord::new(0, 2), Coord::new(3, 2));
        assert!(m.try_claim(&p3, 2));
    }

    #[test]
    fn braids_cannot_cross() {
        let mut m = Mesh::new(5, 5);
        let horizontal = m.route_xy(Coord::new(0, 2), Coord::new(4, 2));
        assert!(m.try_claim(&horizontal, 1));
        // Any vertical path through the occupied row is blocked...
        let vertical = m.route_xy(Coord::new(2, 0), Coord::new(2, 4));
        assert!(!m.try_claim(&vertical, 2));
        // ...and there is no adaptive way around a full-width wall.
        assert!(m
            .route_adaptive(Coord::new(2, 0), Coord::new(2, 4), 2)
            .is_none());
    }

    #[test]
    fn adaptive_routing_detours() {
        let mut m = Mesh::new(5, 5);
        // Block the middle of the direct row.
        let wall = m.route_xy(Coord::new(2, 2), Coord::new(2, 3));
        assert!(m.try_claim(&wall, 9));
        let p = m
            .route_adaptive(Coord::new(0, 2), Coord::new(4, 2), 1)
            .expect("detour exists");
        assert_eq!(p.source(), Coord::new(0, 2));
        assert_eq!(p.dest(), Coord::new(4, 2));
        assert!(p.len_hops() >= 6, "must detour, got {} hops", p.len_hops());
        assert!(m.try_claim(&p, 1));
    }

    #[test]
    fn adaptive_prefers_shortest_free() {
        let m = Mesh::new(6, 6);
        let p = m
            .route_adaptive(Coord::new(1, 1), Coord::new(4, 3), 1)
            .unwrap();
        assert_eq!(
            p.len_hops() as u32,
            Coord::new(1, 1).manhattan(Coord::new(4, 3))
        );
    }

    #[test]
    fn release_frees_resources() {
        let mut m = Mesh::new(4, 4);
        let p = m.route_xy(Coord::new(0, 0), Coord::new(3, 3));
        assert!(m.try_claim(&p, 5));
        assert_eq!(m.busy_links(), 6);
        m.release(&p, 5);
        assert_eq!(m.busy_links(), 0);
        assert!(m.try_claim(&p, 6));
    }

    #[test]
    #[should_panic(expected = "not owned")]
    fn release_by_wrong_owner_panics() {
        let mut m = Mesh::new(3, 3);
        let p = m.route_xy(Coord::new(0, 0), Coord::new(2, 0));
        assert!(m.try_claim(&p, 1));
        m.release(&p, 2);
    }

    #[test]
    fn reclaim_by_same_owner_is_idempotent() {
        let mut m = Mesh::new(3, 3);
        let p = m.route_xy(Coord::new(0, 0), Coord::new(2, 0));
        assert!(m.try_claim(&p, 1));
        assert!(m.try_claim(&p, 1));
        assert_eq!(m.busy_links(), 2);
        m.release(&p, 1);
        assert_eq!(m.busy_links(), 0);
    }

    #[test]
    fn utilization_accounting() {
        let mut m = Mesh::new(3, 3);
        // 12 links total.
        assert_eq!(m.num_links(), 12);
        let p = m.route_xy(Coord::new(0, 0), Coord::new(2, 0)); // 2 links
        assert!(m.try_claim(&p, 1));
        m.tick();
        m.tick();
        m.release(&p, 1);
        m.tick();
        // (2 + 2 + 0) / (3 * 12)
        let expect = 4.0 / 36.0;
        assert!((m.utilization() - expect).abs() < 1e-12);
        assert_eq!(m.ticks(), 3);
    }

    #[test]
    fn utilization_of_idle_mesh_is_zero() {
        let m = Mesh::new(2, 2);
        assert_eq!(m.utilization(), 0.0);
    }

    #[test]
    fn zero_hop_path_claims_single_node() {
        let mut m = Mesh::new(3, 3);
        let p = Path::new(vec![Coord::new(1, 1)]);
        assert!(m.try_claim(&p, 1));
        assert_eq!(m.busy_links(), 0);
        // Another braid cannot use that router.
        let crossing = m.route_xy(Coord::new(1, 0), Coord::new(1, 2));
        assert!(!m.try_claim(&crossing, 2));
        m.release(&p, 1);
        assert!(m.try_claim(&crossing, 2));
    }

    #[test]
    #[should_panic(expected = "dimensions must be positive")]
    fn zero_size_mesh_rejected() {
        let _ = Mesh::new(0, 3);
    }

    #[test]
    fn claim_route_matches_route_then_claim() {
        // Exhaustively compare the fused walk against the two-step
        // route+claim on a congested mesh, for both dimension orders.
        let mut reference = Mesh::new(6, 6);
        let mut fused = Mesh::new(6, 6);
        let wall = reference.route_xy(Coord::new(2, 1), Coord::new(2, 4));
        assert!(reference.try_claim(&wall, 99));
        assert!(fused.try_claim(&wall, 99));
        let mut out = Path::empty();
        for sx in 0..6u32 {
            for sy in 0..6u32 {
                for dx in 0..6u32 {
                    let (src, dst) = (Coord::new(sx, sy), Coord::new(dx, (sx + dx) % 6));
                    let owner = sx * 36 + sy * 6 + dx + 1000;
                    // X-then-Y.
                    let p = reference.route_xy(src, dst);
                    let expect = reference.try_claim(&p, owner);
                    let got = fused.claim_route_xy_into(src, dst, owner, &mut out);
                    assert_eq!(got, expect, "xy {src}->{dst}");
                    if expect {
                        assert_eq!(out.nodes(), p.nodes());
                        reference.release(&p, owner);
                        fused.release(&out, owner);
                    }
                    // Y-then-X.
                    let p = reference.route_yx(src, dst);
                    let expect = reference.try_claim(&p, owner);
                    let got = fused.claim_route_yx_into(src, dst, owner, &mut out);
                    assert_eq!(got, expect, "yx {src}->{dst}");
                    if expect {
                        assert_eq!(out.nodes(), p.nodes());
                        reference.release(&p, owner);
                        fused.release(&out, owner);
                    }
                    assert_eq!(reference.busy_links(), fused.busy_links());
                }
            }
        }
    }

    #[test]
    fn claim_route_failure_claims_nothing() {
        let mut m = Mesh::new(5, 5);
        let wall = m.route_xy(Coord::new(2, 0), Coord::new(2, 4));
        assert!(m.try_claim(&wall, 1));
        let busy = m.busy_links();
        let mut out = Path::empty();
        assert!(!m.claim_route_xy_into(Coord::new(0, 2), Coord::new(4, 2), 2, &mut out));
        assert_eq!(m.busy_links(), busy);
        // The wall itself is untouched and still releasable.
        m.release(&wall, 1);
        assert_eq!(m.busy_links(), 0);
    }

    #[test]
    fn claim_route_convenience_wrappers() {
        let mut m = Mesh::new(4, 4);
        let p = m
            .claim_route_xy(Coord::new(0, 0), Coord::new(3, 2), 7)
            .expect("free mesh");
        assert_eq!(p.len_hops(), 5);
        assert!(m
            .claim_route_yx(Coord::new(0, 1), Coord::new(3, 1), 8)
            .is_none());
        m.release(&p, 7);
        assert!(m
            .claim_route_yx(Coord::new(0, 1), Coord::new(3, 1), 8)
            .is_some());
    }

    #[test]
    fn route_into_variants_match_allocating_routes() {
        let m = Mesh::new(7, 5);
        let mut out = Path::empty();
        for (src, dst) in [
            (Coord::new(0, 0), Coord::new(6, 4)),
            (Coord::new(3, 3), Coord::new(3, 3)),
            (Coord::new(6, 0), Coord::new(0, 4)),
        ] {
            m.route_xy_into(src, dst, &mut out);
            assert_eq!(out.nodes(), m.route_xy(src, dst).nodes());
            m.route_yx_into(src, dst, &mut out);
            assert_eq!(out.nodes(), m.route_yx(src, dst).nodes());
        }
    }

    #[test]
    fn adaptive_into_reuses_scratch_across_searches() {
        let mut m = Mesh::new(8, 8);
        let wall = m.route_xy(Coord::new(3, 2), Coord::new(3, 5));
        assert!(m.try_claim(&wall, 50));
        let mut scratch = RouteScratch::new();
        let mut out = Path::empty();
        for trial in 0..10u32 {
            let src = Coord::new(0, trial % 8);
            let dst = Coord::new(7, (trial * 3) % 8);
            let expected = m.route_adaptive(src, dst, 1);
            let got = m.route_adaptive_into(src, dst, 1, &mut scratch, &mut out);
            match expected {
                Some(p) => {
                    assert!(got);
                    assert_eq!(out.nodes(), p.nodes(), "trial {trial}");
                }
                None => assert!(!got),
            }
        }
    }

    #[test]
    fn adaptive_into_blocked_endpoint_fails() {
        let mut m = Mesh::new(4, 4);
        assert!(m.try_claim(&Path::new(vec![Coord::new(0, 0)]), 9));
        let mut scratch = RouteScratch::new();
        let mut out = Path::empty();
        assert!(!m.route_adaptive_into(
            Coord::new(0, 0),
            Coord::new(3, 3),
            1,
            &mut scratch,
            &mut out
        ));
    }

    #[test]
    fn node_claimed_tracks_claims() {
        let mut m = Mesh::new(4, 4);
        let p = m.route_xy(Coord::new(0, 0), Coord::new(2, 0));
        assert!(!m.node_claimed(Coord::new(1, 0)));
        assert!(m.try_claim(&p, 7));
        assert!(m.node_claimed(Coord::new(1, 0)));
        assert!(!m.node_claimed(Coord::new(3, 3)));
        m.release(&p, 7);
        assert!(!m.node_claimed(Coord::new(1, 0)));
    }

    #[test]
    fn topology_accessor_matches_dimensions() {
        let m = Mesh::new(6, 4);
        let t = m.topology();
        assert_eq!((t.width(), t.height()), (6, 4));
        assert_eq!(t.num_links(), m.num_links());
    }

    #[test]
    fn certainly_blocked_probes_are_conservative() {
        // Exhaustive soundness check on a congested mesh: whenever a
        // probe says "blocked", the corresponding claim must fail for a
        // fresh owner holding nothing.
        let mut m = Mesh::new(7, 7);
        let wall_v = m.route_xy(Coord::new(3, 1), Coord::new(3, 5));
        assert!(m.try_claim(&wall_v, 90));
        let wall_h = m.route_xy(Coord::new(0, 6), Coord::new(6, 6));
        assert!(m.try_claim(&wall_h, 91));
        m.ensure_occupancy_index();
        for sx in 0..7u32 {
            for sy in 0..7u32 {
                for dx in 0..7u32 {
                    for dy in 0..7u32 {
                        let (src, dst) = (Coord::new(sx, sy), Coord::new(dx, dy));
                        if m.xy_certainly_blocked(src, dst) {
                            let mut probe = m.clone();
                            assert!(
                                !probe.claim_route_xy_into(src, dst, 7, &mut Path::empty()),
                                "xy probe lied for {src}->{dst}"
                            );
                        }
                        if m.yx_certainly_blocked(src, dst) {
                            let mut probe = m.clone();
                            assert!(
                                !probe.claim_route_yx_into(src, dst, 7, &mut Path::empty()),
                                "yx probe lied for {src}->{dst}"
                            );
                        }
                        if m.route_certainly_blocked(src, dst) {
                            assert!(
                                m.route_adaptive(src, dst, 7).is_none(),
                                "route probe lied for {src}->{dst}"
                            );
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn full_wall_blocks_all_routes() {
        let mut m = Mesh::new(5, 5);
        let wall = m.route_xy(Coord::new(0, 2), Coord::new(4, 2));
        assert!(m.try_claim(&wall, 1));
        m.ensure_occupancy_index();
        // Row 2 is fully claimed: anything crossing it is provably
        // unroutable, even adaptively.
        assert!(m.route_certainly_blocked(Coord::new(2, 0), Coord::new(2, 4)));
        assert!(m.xy_certainly_blocked(Coord::new(2, 0), Coord::new(2, 4)));
        assert!(m.yx_certainly_blocked(Coord::new(2, 0), Coord::new(2, 4)));
        // Endpoints on the same side are not separated by it.
        assert!(!m.route_certainly_blocked(Coord::new(0, 0), Coord::new(4, 1)));
        // Releasing the wall clears every verdict.
        m.release(&wall, 1);
        assert!(!m.route_certainly_blocked(Coord::new(2, 0), Coord::new(2, 4)));
        assert!(!m.xy_certainly_blocked(Coord::new(2, 0), Coord::new(2, 4)));
    }

    #[test]
    fn enclosed_endpoint_blocks_all_routes() {
        let mut m = Mesh::new(5, 5);
        // Wall the corner router (0, 0) in with its two neighbors.
        assert!(m.try_claim(&Path::new(vec![Coord::new(1, 0)]), 1));
        assert!(m.try_claim(&Path::new(vec![Coord::new(0, 1)]), 2));
        assert!(m.route_certainly_blocked(Coord::new(0, 0), Coord::new(4, 4)));
        assert!(m
            .route_adaptive(Coord::new(0, 0), Coord::new(4, 4), 9)
            .is_none());
        // The zero-hop route to the enclosed-but-free router itself is
        // fine, so enclosure must not fire on src == dst.
        assert!(!m.route_certainly_blocked(Coord::new(0, 0), Coord::new(0, 0)));
        // Freeing one exit clears the verdict.
        m.release(&Path::new(vec![Coord::new(1, 0)]), 1);
        assert!(!m.route_certainly_blocked(Coord::new(0, 0), Coord::new(4, 4)));
    }

    #[test]
    fn claimed_endpoint_blocks_everything() {
        let mut m = Mesh::new(4, 4);
        assert!(m.try_claim(&Path::new(vec![Coord::new(1, 1)]), 5));
        assert!(m.node_claimed(Coord::new(1, 1)));
        assert!(!m.node_claimed(Coord::new(0, 0)));
        assert!(m.xy_certainly_blocked(Coord::new(1, 1), Coord::new(3, 3)));
        assert!(m.yx_certainly_blocked(Coord::new(0, 0), Coord::new(1, 1)));
        assert!(m.route_certainly_blocked(Coord::new(1, 1), Coord::new(3, 3)));
    }

    #[test]
    fn interval_summary_tightens_after_boundary_release() {
        let mut m = Mesh::new(8, 8);
        // Three single-node claims on row 3 at x = 1, 4, 6.
        for x in [1u32, 4, 6] {
            assert!(m.try_claim(&Path::new(vec![Coord::new(x, 3)]), 10 + x));
        }
        m.ensure_occupancy_index();
        // Span [0, 0] holds nothing; [5, 7] certainly holds x=6.
        assert!(!m.xy_certainly_blocked(Coord::new(0, 3), Coord::new(0, 3)));
        assert!(m.xy_certainly_blocked(Coord::new(5, 3), Coord::new(7, 3)));
        // Release the max boundary; the interval must re-tighten so the
        // span [5, 7] is no longer provably blocked (x=6 freed)...
        m.release(&Path::new(vec![Coord::new(6, 3)]), 16);
        assert!(!m.xy_certainly_blocked(Coord::new(5, 3), Coord::new(7, 3)));
        // ...but the remaining min boundary still blocks its span.
        assert!(m.xy_certainly_blocked(Coord::new(0, 3), Coord::new(2, 3)));
        m.release(&Path::new(vec![Coord::new(1, 3)]), 11);
        assert!(!m.xy_certainly_blocked(Coord::new(0, 3), Coord::new(2, 3)));
    }

    #[test]
    fn line_accessors_track_claims() {
        let mut m = Mesh::new(6, 6);
        assert_eq!(m.row_claimed_count(2), 0);
        assert_eq!(m.row_claimed_interval(2), None);
        let p = m.route_xy(Coord::new(1, 2), Coord::new(4, 2));
        assert!(m.try_claim(&p, 3));
        assert_eq!(m.row_claimed_count(2), 4);
        assert_eq!(m.row_claimed_interval(2), Some((1, 4)));
        assert_eq!(m.col_claimed_count(4), 1);
        assert_eq!(m.col_claimed_interval(4), Some((2, 2)));
        m.release(&p, 3);
        assert_eq!(m.row_claimed_count(2), 0);
        assert_eq!(m.col_claimed_interval(4), None);
    }

    #[test]
    #[should_panic(expected = "outside height")]
    fn row_accessor_off_mesh_panics() {
        let m = Mesh::new(4, 4);
        let _ = m.row_claimed_count(4);
    }

    #[test]
    fn index_stays_dormant_until_a_claim_fails() {
        let mut m = Mesh::new(6, 6);
        assert!(!m.occupancy_index_active());
        // Successful claims and releases never wake the index.
        let p = m.route_xy(Coord::new(0, 0), Coord::new(5, 0));
        assert!(m.try_claim(&p, 1));
        m.release(&p, 1);
        let q = m
            .claim_route_yx(Coord::new(0, 1), Coord::new(5, 1), 2)
            .unwrap();
        m.release(&q, 2);
        assert!(!m.occupancy_index_active());
        // The first failed claim brings it live.
        assert!(m.try_claim(&p, 1));
        let crossing = m.route_xy(Coord::new(2, 0), Coord::new(2, 5));
        assert!(!m.try_claim(&crossing, 3));
        assert!(m.occupancy_index_active());
    }

    #[test]
    fn fused_claim_failure_also_wakes_the_index() {
        let mut m = Mesh::new(5, 5);
        let wall = m.route_xy(Coord::new(0, 2), Coord::new(4, 2));
        assert!(m.try_claim(&wall, 1));
        assert!(!m.occupancy_index_active());
        let mut out = Path::empty();
        assert!(!m.claim_route_xy_into(Coord::new(2, 0), Coord::new(2, 4), 2, &mut out));
        assert!(m.occupancy_index_active());
        // Once live, the separator proof fires.
        assert!(m.route_certainly_blocked(Coord::new(2, 0), Coord::new(2, 4)));
    }

    #[test]
    fn rebuilt_index_matches_incremental_maintenance() {
        // Claim a congested pattern on a dormant-index mesh, wake the
        // index, and check every line summary against a twin mesh whose
        // index was live from the start.
        let mut lazy = Mesh::new(9, 9);
        let mut eager = Mesh::new(9, 9);
        eager.ensure_occupancy_index();
        let claims = [
            (Coord::new(0, 0), Coord::new(8, 0)),
            (Coord::new(2, 2), Coord::new(2, 7)),
            (Coord::new(4, 4), Coord::new(7, 6)),
            (Coord::new(0, 8), Coord::new(3, 8)),
        ];
        for (i, &(a, b)) in claims.iter().enumerate() {
            let p = lazy.route_xy(a, b);
            assert!(lazy.try_claim(&p, i as u32 + 1));
            assert!(eager.try_claim(&p, i as u32 + 1));
        }
        // Release one mid-pattern path so boundaries re-tighten on the
        // eager side before the comparison.
        let p = lazy.route_xy(claims[2].0, claims[2].1);
        lazy.release(&p, 3);
        eager.release(&p, 3);
        lazy.ensure_occupancy_index();
        for y in 0..9 {
            assert_eq!(
                lazy.row_claimed_count(y),
                eager.row_claimed_count(y),
                "row {y} count"
            );
            assert_eq!(
                lazy.row_claimed_interval(y),
                eager.row_claimed_interval(y),
                "row {y} interval"
            );
        }
        for x in 0..9 {
            assert_eq!(lazy.col_claimed_count(x), eager.col_claimed_count(x));
            assert_eq!(lazy.col_claimed_interval(x), eager.col_claimed_interval(x));
        }
    }

    #[test]
    fn dormant_probes_still_catch_claimed_endpoints() {
        let mut m = Mesh::new(5, 5);
        assert!(m.try_claim(&Path::new(vec![Coord::new(2, 2)]), 1));
        assert!(!m.occupancy_index_active());
        assert!(m.xy_certainly_blocked(Coord::new(2, 2), Coord::new(4, 4)));
        assert!(m.yx_certainly_blocked(Coord::new(0, 0), Coord::new(2, 2)));
        assert!(m.route_certainly_blocked(Coord::new(2, 2), Coord::new(0, 0)));
        // Corridor proofs need the live index: a wall mid-corridor is
        // invisible while dormant (weaker verdict, still sound)...
        let wall = m.route_xy(Coord::new(0, 3), Coord::new(4, 3));
        assert!(m.try_claim(&wall, 2));
        assert!(!m.xy_certainly_blocked(Coord::new(0, 0), Coord::new(0, 4)));
        // ...and fires once the index is live.
        m.ensure_occupancy_index();
        assert!(m.xy_certainly_blocked(Coord::new(0, 0), Coord::new(0, 4)));
    }

    #[test]
    fn dormant_line_accessors_scan_real_occupancy() {
        let mut m = Mesh::new(6, 6);
        let p = m.route_xy(Coord::new(1, 2), Coord::new(4, 2));
        assert!(m.try_claim(&p, 3));
        assert!(!m.occupancy_index_active());
        assert_eq!(m.row_claimed_count(2), 4);
        assert_eq!(m.row_claimed_interval(2), Some((1, 4)));
        assert_eq!(m.col_claimed_count(4), 1);
        assert_eq!(m.col_claimed_interval(4), Some((2, 2)));
        assert_eq!(m.row_claimed_count(0), 0);
        assert_eq!(m.col_claimed_interval(0), None);
    }

    #[test]
    fn tick_n_matches_repeated_tick() {
        let mut a = Mesh::new(4, 4);
        let mut b = Mesh::new(4, 4);
        let p = a.route_xy(Coord::new(0, 0), Coord::new(3, 0));
        assert!(a.try_claim(&p, 1));
        assert!(b.try_claim(&p, 1));
        for _ in 0..17 {
            a.tick();
        }
        b.tick_n(17);
        assert_eq!(a.ticks(), b.ticks());
        assert!((a.utilization() - b.utilization()).abs() < f64::EPSILON);
        b.tick_n(0);
        assert_eq!(b.ticks(), 17);
    }

    #[test]
    fn defect_free_map_matches_plain_mesh() {
        use crate::defect::DefectMap;
        let topo = Topology::new(5, 4);
        let mut a = Mesh::new(5, 4);
        let mut b = Mesh::with_defects(5, 4, &DefectMap::empty(topo));
        let p = a.route_xy(Coord::new(0, 0), Coord::new(4, 3));
        assert_eq!(a.try_claim(&p, 1), b.try_claim(&p, 1));
        assert_eq!(a.busy_links(), b.busy_links());
        assert!(!b.node_defective(Coord::new(2, 2)));
    }

    #[test]
    fn defective_resources_block_claims_and_adaptive_routes() {
        use crate::defect::DefectMap;
        let text = "dims 5 5\nnode 2 0\nlink 2 2 3 2\n";
        let map = DefectMap::from_text(text).unwrap();
        let mut m = Mesh::with_defects(5, 5, &map);
        assert!(m.node_defective(Coord::new(2, 0)));
        // Defects do not count as traffic.
        assert_eq!(m.busy_links(), 0);
        assert_eq!(m.utilization(), 0.0);
        // A route through the dead node cannot be claimed...
        let p = m.route_xy(Coord::new(0, 0), Coord::new(4, 0));
        assert!(!m.try_claim(&p, 1));
        // ...the fused walks refuse it too...
        let mut out = Path::empty();
        assert!(!m.claim_route_xy_into(Coord::new(0, 0), Coord::new(4, 0), 1, &mut out));
        // ...and the adaptive router detours around both defects.
        let detour = m
            .route_adaptive(Coord::new(0, 0), Coord::new(4, 0), 1)
            .expect("live detour exists");
        assert!(detour.nodes().iter().all(|&n| !m.node_defective(n)));
        assert!(detour
            .links()
            .all(|(a, b)| !(a == Coord::new(2, 2) && b == Coord::new(3, 2)
                || a == Coord::new(3, 2) && b == Coord::new(2, 2))));
        assert!(m.try_claim(&detour, 1));
    }

    #[test]
    fn probes_stay_sound_with_defects() {
        use crate::defect::DefectMap;
        // A fully dead row separates the mesh; the probes must prove it
        // once the index is live, and must never contradict the claims.
        let mut text = String::from("dims 5 5\n");
        for x in 0..5 {
            text.push_str(&format!("node {x} 2\n"));
        }
        let map = DefectMap::from_text(&text).unwrap();
        let mut m = Mesh::with_defects(5, 5, &map);
        m.ensure_occupancy_index();
        assert!(m.route_certainly_blocked(Coord::new(2, 0), Coord::new(2, 4)));
        assert!(m
            .route_adaptive(Coord::new(2, 0), Coord::new(2, 4), 1)
            .is_none());
        assert!(m.xy_certainly_blocked(Coord::new(2, 0), Coord::new(2, 4)));
        // Same-side traffic is unaffected.
        let p = m.route_xy(Coord::new(0, 0), Coord::new(4, 0));
        assert!(m.try_claim(&p, 1));
    }

    #[test]
    #[should_panic(expected = "reserved")]
    fn defect_sentinel_is_not_a_legal_owner() {
        let mut m = Mesh::new(3, 3);
        let p = m.route_xy(Coord::new(0, 0), Coord::new(2, 0));
        let _ = m.try_claim(&p, ClaimId::MAX - 1);
    }

    #[test]
    #[should_panic(expected = "defect map is")]
    fn mismatched_defect_map_dims_rejected() {
        use crate::defect::DefectMap;
        let map = DefectMap::empty(Topology::new(4, 4));
        let _ = Mesh::with_defects(5, 5, &map);
    }
}
