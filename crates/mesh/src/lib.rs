//! Circuit-switched 2D mesh network substrate for braid routing.
//!
//! The paper maps double-defect braiding onto "simulating a mesh network,
//! with braids as messages in this network" (Section 6.1). This crate is
//! that mesh: routers sit at tile corners, braids atomically claim whole
//! routes (nodes and links) because defects can neither cross nor be
//! buffered, and the fabric tracks the utilization statistic Figure 6
//! reports.
//!
//! Three routing policies are provided, matching the braid scheduler's
//! escalation ladder: dimension-ordered [`Mesh::route_xy`] /
//! [`Mesh::route_yx`], and congestion-aware [`Mesh::route_adaptive`]
//! (BFS over currently-free resources).
//!
//! # Examples
//!
//! ```
//! use scq_mesh::{Coord, Mesh};
//!
//! let mut mesh = Mesh::new(8, 8);
//! let a = mesh.route_xy(Coord::new(0, 0), Coord::new(7, 0));
//! let b = mesh.route_xy(Coord::new(0, 1), Coord::new(7, 1));
//! assert!(mesh.try_claim(&a, 1));
//! assert!(mesh.try_claim(&b, 2)); // parallel rows don't conflict
//! mesh.tick();
//! assert!(mesh.utilization() > 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod coord;
#[allow(clippy::module_inception)]
mod mesh;

pub use coord::{Coord, Path};
pub use mesh::{ClaimId, Mesh};
