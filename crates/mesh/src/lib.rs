//! The communication-fabric substrate shared by both surface-code
//! encodings: one geometry, two occupancy disciplines.
//!
//! ```text
//!                    Topology (geometry + deterministic routes)
//!                    /                                    \
//!         Mesh (circuit-switched)              Fabric (packet-style)
//!         braids claim whole routes            EPR halves hop link by
//!         atomically; no buffering             link; per-link lanes,
//!         (double-defect backend)              FIFO queueing
//!                    \                                    /
//!              scq-braid scheduler            scq-teleport EPR pipeline
//! ```
//!
//! The paper maps double-defect braiding onto "simulating a mesh network,
//! with braids as messages in this network" (Section 6.1). [`Mesh`] is
//! that network: routers sit at tile corners, braids atomically claim
//! whole routes (nodes and links) because defects can neither cross nor
//! be buffered, and the mesh tracks the utilization statistic Figure 6
//! reports. [`Fabric`] is the planar machine's counterpart (Section
//! 8.1): EPR halves are in-flight messages with a route cursor and a
//! per-hop countdown, links have a finite number of swap lanes, and
//! saturated links queue messages in FIFO order — the congestion the
//! flow-level model cannot express. Both layers share the [`Topology`]
//! index spaces, and both advance event-driven (no per-cycle stepping).
//!
//! Three routing policies are provided, matching the braid scheduler's
//! escalation ladder: dimension-ordered [`Mesh::route_xy`] /
//! [`Mesh::route_yx`], and congestion-aware [`Mesh::route_adaptive`]
//! (BFS over currently-free resources).
//!
//! # The fault layer
//!
//! Real devices ship with dead qubits and marginal couplers. A
//! [`DefectMap`] records dead tiles, dead links, and flaky links
//! (per-hop transient failure probabilities), loaded from a text format
//! or sampled reproducibly from a seed. [`Mesh::with_defects`] models
//! dead resources as permanent claims (every claim path and probe
//! avoids them for free), [`Fabric::with_defects`] injects seeded
//! transient faults on flaky links (bounded retry with exponential
//! backoff, counted in [`FabricStats`] and the [`LinkHeatmap`]), and
//! [`DefectMap::route_avoiding`] finds defect-free detours.
//! Structurally impossible communication is reported as a [`CommError`]
//! value — never a panic. An empty map leaves every consumer
//! bit-identical to the defect-free code paths.
//!
//! # Hot-path APIs
//!
//! The braid scheduler's inner loop uses the allocation-free variants:
//! the fused [`Mesh::claim_route_xy_into`] / [`Mesh::claim_route_yx_into`]
//! walks check router/link occupancy in place and only materialize a
//! route (into a caller-provided [`Path`] buffer) when the claim
//! succeeds — under contention most claims fail, so the failure path
//! allocates nothing; [`Mesh::route_adaptive_into`] reuses one
//! [`RouteScratch`] across BFS searches; and [`Mesh::tick_n`] advances
//! the utilization clock over an idle stretch in one step so an
//! event-driven scheduler can jump between wake times.
//!
//! # Examples
//!
//! ```
//! use scq_mesh::{Coord, Mesh};
//!
//! let mut mesh = Mesh::new(8, 8);
//! let a = mesh.route_xy(Coord::new(0, 0), Coord::new(7, 0));
//! let b = mesh.route_xy(Coord::new(0, 1), Coord::new(7, 1));
//! assert!(mesh.try_claim(&a, 1));
//! assert!(mesh.try_claim(&b, 2)); // parallel rows don't conflict
//! mesh.tick();
//! assert!(mesh.utilization() > 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod coord;
mod defect;
pub mod event_queue;
mod fabric;
mod heatmap;
#[allow(clippy::module_inception)]
mod mesh;
mod topology;

pub use coord::{Coord, Path};
pub use defect::{CommError, DefectMap, DefectParseError, FLAKY_FAILURE_PROB};
pub use event_queue::{CalendarQueue, EventQueue, HeapQueue};
pub use fabric::{Fabric, FabricConfig, FabricStats, HopRecord, MsgId};
pub use heatmap::LinkHeatmap;
pub use mesh::{ClaimId, Mesh, RouteScratch};
pub use topology::Topology;
