//! Spot-check: prints the favorability-boundary shape for one profile.

use scq_apps::Benchmark;
use scq_estimate::{AppProfile, EstimateConfig};
use scq_explore::*;

fn main() {
    let cfg = EstimateConfig::default();
    println!("== profiles ==");
    let profiles: Vec<AppProfile> = Benchmark::ALL
        .iter()
        .map(|&b| AppProfile::calibrate(b))
        .collect();
    for p in &profiles {
        println!(
            "{:18} P={:6.2} f2q={:.2} fT={:.2} C={:4.2} kappa={:.3}",
            p.name, p.parallelism, p.frac_two_qubit, p.frac_t, p.braid_congestion, p.layout_kappa
        );
    }
    println!("\n== fig8 ratios (pP=1e-8) ==");
    for p in &profiles {
        let pts = ratio_sweep(p, &cfg, &log_spaced(1e2, 1e24, 12));
        print!("{:18}", p.name);
        for pt in &pts {
            print!(" {:5.2}", pt.space_time_ratio());
        }
        println!();
    }
    println!("\n== fig9 boundaries (rows: apps, cols: pP 1e-8..1e-3) ==");
    let rates = [1e-8, 1e-7, 1e-6, 1e-5, 1e-4, 1e-3];
    for p in &profiles {
        let line = favorability_boundary(p, &cfg, &rates, 1e24);
        print!("{:18}", p.name);
        for (_, c) in &line.points {
            match c {
                Some(k) => print!(" {:8.1e}", k),
                None => print!("    >1e24"),
            }
        }
        println!();
    }
}
