//! Design-space exploration: the sweeps behind Figures 7, 8, and 9.
//!
//! The paper's headline deliverable is a *favorability map*: for every
//! combination of application, computation size (`1/pL`), and physical
//! error rate (`pP`), which surface-code encoding costs less space-time?
//! This crate drives the calibrated estimator of `scq-estimate` across
//! those axes:
//!
//! - [`sweep_computation_sizes`]: absolute time and qubits per encoding
//!   (Figure 7),
//! - [`ratio_sweep`]: double-defect/planar normalized resources
//!   (Figure 8),
//! - [`crossover_size`]: the computation size where the space-time
//!   product favors double-defect codes,
//! - [`favorability_boundary`]: the crossover line across physical error
//!   rates (Figure 9).
//!
//! # Examples
//!
//! ```
//! use scq_apps::Benchmark;
//! use scq_estimate::{AppProfile, EstimateConfig};
//! use scq_explore::{crossover_size, log_spaced};
//!
//! let profile = AppProfile::calibrate(Benchmark::Gse);
//! let cross = crossover_size(&profile, &EstimateConfig::default(), (1.0, 1e24));
//! // GSE is serial: the crossover exists somewhere in the sweep.
//! assert!(cross.is_some());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use scq_estimate::{estimate_both, AppProfile, EstimateConfig, ResourceEstimate};

/// One point of the Figure 7 absolute-resource sweep.
#[derive(Clone, Debug, PartialEq)]
pub struct SweepPoint {
    /// Computation size (`1/pL`, logical ops).
    pub kq: f64,
    /// Planar estimate.
    pub planar: ResourceEstimate,
    /// Double-defect estimate.
    pub double_defect: ResourceEstimate,
}

/// One point of the Figure 8 normalized-ratio sweep.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RatioPoint {
    /// Computation size.
    pub kq: f64,
    /// Double-defect physical qubits over planar physical qubits.
    pub qubit_ratio: f64,
    /// Double-defect seconds over planar seconds.
    pub time_ratio: f64,
}

impl RatioPoint {
    /// The favorability metric: `qubits x time` ratio. Values above 1
    /// favor planar codes; the crossover is where this reaches 1.
    pub fn space_time_ratio(&self) -> f64 {
        self.qubit_ratio * self.time_ratio
    }
}

/// Logarithmically spaced values from `lo` to `hi` inclusive.
///
/// # Panics
///
/// Panics unless `0 < lo <= hi` and `n >= 2`.
pub fn log_spaced(lo: f64, hi: f64, n: usize) -> Vec<f64> {
    assert!(lo > 0.0 && lo <= hi, "need 0 < lo <= hi");
    assert!(n >= 2, "need at least two points");
    let (llo, lhi) = (lo.log10(), hi.log10());
    (0..n)
        .map(|i| 10f64.powf(llo + (lhi - llo) * i as f64 / (n - 1) as f64))
        .collect()
}

/// Sweeps absolute resources over computation sizes (Figure 7). Sizes
/// the technology cannot support (above threshold) are skipped.
pub fn sweep_computation_sizes(
    profile: &AppProfile,
    config: &EstimateConfig,
    sizes: &[f64],
) -> Vec<SweepPoint> {
    sizes
        .iter()
        .filter_map(|&kq| {
            estimate_both(profile, kq, config)
                .ok()
                .map(|(planar, double_defect)| SweepPoint {
                    kq,
                    planar,
                    double_defect,
                })
        })
        .collect()
}

/// Sweeps the double-defect/planar resource ratios (Figure 8).
pub fn ratio_sweep(
    profile: &AppProfile,
    config: &EstimateConfig,
    sizes: &[f64],
) -> Vec<RatioPoint> {
    sweep_computation_sizes(profile, config, sizes)
        .into_iter()
        .map(|p| RatioPoint {
            kq: p.kq,
            qubit_ratio: p.double_defect.physical_qubits / p.planar.physical_qubits,
            time_ratio: p.double_defect.seconds / p.planar.seconds,
        })
        .collect()
}

/// Finds the smallest computation size in `range` at which the
/// space-time product favors double-defect codes (ratio <= 1), the
/// "cross-over point" of Figures 8 and 9.
///
/// Scans a log grid, then bisects the bracketing interval. Returns
/// `None` when planar stays favorable across the whole range (the
/// boundary is off the top of the chart) or the technology is above
/// threshold.
pub fn crossover_size(
    profile: &AppProfile,
    config: &EstimateConfig,
    range: (f64, f64),
) -> Option<f64> {
    let ratio = |kq: f64| -> Option<f64> {
        estimate_both(profile, kq, config)
            .ok()
            .map(|(p, dd)| dd.space_time() / p.space_time())
    };
    let grid = log_spaced(range.0.max(1.0), range.1, 97);
    let mut prev: Option<(f64, f64)> = None;
    for &kq in &grid {
        let Some(r) = ratio(kq) else { continue };
        if r <= 1.0 {
            let (mut lo, mut hi) = match prev {
                Some((pk, _)) => (pk, kq),
                None => return Some(kq), // favorable from the start
            };
            for _ in 0..60 {
                let mid = (0.5 * (lo.ln() + hi.ln())).exp();
                match ratio(mid) {
                    Some(rm) if rm <= 1.0 => hi = mid,
                    _ => lo = mid,
                }
            }
            return Some(hi);
        }
        prev = Some((kq, r));
    }
    None
}

/// One application's crossover boundary across physical error rates —
/// one line of Figure 9.
#[derive(Clone, Debug, PartialEq)]
pub struct FavorabilityLine {
    /// Application name.
    pub app: String,
    /// `(p_physical, crossover computation size)` pairs; `None` when no
    /// crossover exists below `max_kq` (planar favored everywhere).
    pub points: Vec<(f64, Option<f64>)>,
}

/// Computes an application's Figure 9 boundary line: for each physical
/// error rate, the computation size at which double-defect codes start
/// to win.
pub fn favorability_boundary(
    profile: &AppProfile,
    config: &EstimateConfig,
    error_rates: &[f64],
    max_kq: f64,
) -> FavorabilityLine {
    let points = error_rates
        .iter()
        .map(|&p| {
            let cfg = EstimateConfig {
                technology: config.technology.with_error_rate(p),
                ..*config
            };
            (p, crossover_size(profile, &cfg, (1.0, max_kq)))
        })
        .collect();
    FavorabilityLine {
        app: profile.name.clone(),
        points,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scq_apps::Benchmark;

    fn profile(bench: Benchmark) -> AppProfile {
        AppProfile::calibrate(bench)
    }

    #[test]
    fn log_spaced_endpoints_and_monotonicity() {
        let v = log_spaced(1.0, 1e6, 7);
        assert_eq!(v.len(), 7);
        assert!((v[0] - 1.0).abs() < 1e-9);
        assert!((v[6] - 1e6).abs() < 1e-3);
        assert!(v.windows(2).all(|w| w[0] < w[1]));
        assert!((v[1] - 10.0).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "0 < lo <= hi")]
    fn log_spaced_rejects_bad_range() {
        let _ = log_spaced(10.0, 1.0, 3);
    }

    #[test]
    fn sweep_grows_monotonically_in_time() {
        let p = profile(Benchmark::Gse);
        let cfg = EstimateConfig::default();
        let pts = sweep_computation_sizes(&p, &cfg, &log_spaced(1e2, 1e20, 10));
        assert_eq!(pts.len(), 10);
        for w in pts.windows(2) {
            assert!(w[0].planar.seconds < w[1].planar.seconds);
            assert!(w[0].double_defect.seconds < w[1].double_defect.seconds);
            assert!(w[0].planar.physical_qubits <= w[1].planar.physical_qubits);
        }
    }

    #[test]
    fn qubit_ratio_favors_planar() {
        // "Planar tiles are smaller": the qubit ratio stays above 1.
        let p = profile(Benchmark::SquareRoot);
        let pts = ratio_sweep(&p, &EstimateConfig::default(), &log_spaced(1e2, 1e20, 8));
        for pt in &pts {
            assert!(pt.qubit_ratio > 1.0, "kq={}: {}", pt.kq, pt.qubit_ratio);
        }
    }

    #[test]
    fn time_ratio_declines_with_size() {
        let p = profile(Benchmark::SquareRoot);
        let pts = ratio_sweep(&p, &EstimateConfig::default(), &log_spaced(1e2, 1e22, 8));
        let first = pts.first().unwrap().time_ratio;
        let last = pts.last().unwrap().time_ratio;
        assert!(
            last < first,
            "time ratio did not decline: {first} -> {last}"
        );
    }

    #[test]
    fn serial_crossover_exists_and_is_refined() {
        let p = profile(Benchmark::Gse);
        let cfg = EstimateConfig::default();
        let cross = crossover_size(&p, &cfg, (1.0, 1e24)).expect("GSE crosses");
        assert!(cross > 1.0 && cross < 1e24);
        // Verify the bracketing: just above the crossover double-defect
        // is no worse than planar (within refinement tolerance).
        let (pl, dd) = estimate_both(&p, cross * 1.1, &cfg).unwrap();
        assert!(dd.space_time() <= pl.space_time() * 1.05);
    }

    #[test]
    fn parallel_apps_cross_later_than_serial() {
        let cfg = EstimateConfig::default();
        let serial = crossover_size(&profile(Benchmark::Gse), &cfg, (1.0, 1e24));
        let parallel = crossover_size(&profile(Benchmark::IsingFull), &cfg, (1.0, 1e24));
        match (serial, parallel) {
            (Some(s), Some(p)) => assert!(s < p, "serial {s:.2e} !< parallel {p:.2e}"),
            (Some(_), None) => {} // parallel never crosses: even stronger
            other => panic!("unexpected crossover pattern: {other:?}"),
        }
    }

    #[test]
    fn boundary_line_has_one_point_per_error_rate() {
        let p = profile(Benchmark::Gse);
        let rates = [1e-8, 1e-6, 1e-4, 1e-3];
        let line = favorability_boundary(&p, &EstimateConfig::default(), &rates, 1e24);
        assert_eq!(line.points.len(), 4);
        assert_eq!(line.app, "GSE");
        for (rate, _) in &line.points {
            assert!(*rate > 0.0);
        }
    }

    #[test]
    fn above_threshold_rates_yield_no_crossover() {
        let p = profile(Benchmark::Gse);
        let line = favorability_boundary(&p, &EstimateConfig::default(), &[0.5], 1e24);
        assert_eq!(line.points[0].1, None);
    }
}
