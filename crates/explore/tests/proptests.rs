//! Property-based tests over the design-space explorer: crossover
//! bracketing and sweep consistency for randomized application profiles.

use proptest::prelude::*;
use scq_estimate::{estimate_both, AppProfile, EstimateConfig, LogicalScaling};
use scq_explore::{crossover_size, log_spaced, ratio_sweep, sweep_computation_sizes};

/// Arbitrary plausible application profile.
fn arb_profile() -> impl Strategy<Value = AppProfile> {
    (
        1.0f64..80.0, // parallelism
        0.05f64..0.5, // frac 2q
        0.05f64..0.4, // frac T
        1.0f64..3.0,  // braid congestion
        1.0f64..1.5,  // teleport congestion (fabric-measured multiplier)
        0.1f64..1.0,  // kappa
        0.3f64..0.7,  // qubit-scaling exponent
    )
        .prop_map(|(p, f2, ft, c, tc, k, b)| AppProfile {
            name: "prop".into(),
            parallelism: p,
            frac_two_qubit: f2,
            frac_t: ft.min(0.9 - f2),
            braid_congestion: c,
            teleport_congestion: tc,
            layout_kappa: k,
            scaling: LogicalScaling::Power { a: 1.0, b, c: 2.0 },
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn estimates_exist_and_are_positive(profile in arb_profile(), exp in 1u32..22) {
        let kq = 10f64.powi(exp as i32);
        let (planar, dd) = estimate_both(&profile, kq, &EstimateConfig::default()).unwrap();
        prop_assert!(planar.physical_qubits > 0.0 && planar.seconds > 0.0);
        prop_assert!(dd.physical_qubits > 0.0 && dd.seconds > 0.0);
        prop_assert!(planar.code_distance >= 3 && planar.code_distance % 2 == 1);
        prop_assert_eq!(planar.code_distance, dd.code_distance);
    }

    #[test]
    fn time_grows_with_computation_size(profile in arb_profile()) {
        let cfg = EstimateConfig::default();
        let pts = sweep_computation_sizes(&profile, &cfg, &log_spaced(1e2, 1e20, 7));
        for w in pts.windows(2) {
            prop_assert!(w[1].planar.seconds > w[0].planar.seconds);
            prop_assert!(w[1].double_defect.seconds > w[0].double_defect.seconds);
        }
    }

    #[test]
    fn crossover_brackets_the_favorability_flip(profile in arb_profile()) {
        let cfg = EstimateConfig::default();
        if let Some(kq) = crossover_size(&profile, &cfg, (1.0, 1e24)) {
            prop_assert!((1.0..=1e24).contains(&kq));
            // Just above the crossover, double-defect is no worse
            // (within refinement tolerance).
            let (p, dd) = estimate_both(&profile, kq * 1.05, &cfg).unwrap();
            prop_assert!(
                dd.space_time() <= p.space_time() * 1.10,
                "ratio {} just above crossover", dd.space_time() / p.space_time()
            );
        }
    }

    #[test]
    fn ratio_points_are_finite_and_positive(profile in arb_profile()) {
        let pts = ratio_sweep(&profile, &EstimateConfig::default(), &log_spaced(1e2, 1e22, 6));
        for pt in pts {
            prop_assert!(pt.qubit_ratio.is_finite() && pt.qubit_ratio > 0.0);
            prop_assert!(pt.time_ratio.is_finite() && pt.time_ratio > 0.0);
            prop_assert!(
                (pt.space_time_ratio() - pt.qubit_ratio * pt.time_ratio).abs() < 1e-9
            );
        }
    }

    #[test]
    fn higher_braid_congestion_never_delays_crossover(profile in arb_profile()) {
        // More congested braids can only make double-defect *less*
        // attractive: the crossover moves to larger sizes (or vanishes).
        let cfg = EstimateConfig::default();
        let calm = crossover_size(&profile, &cfg, (1.0, 1e24));
        let congested_profile = AppProfile {
            braid_congestion: profile.braid_congestion * 2.0,
            ..profile.clone()
        };
        let congested = crossover_size(&congested_profile, &cfg, (1.0, 1e24));
        match (calm, congested) {
            (Some(a), Some(b)) => prop_assert!(b >= a * 0.99, "{b:.3e} < {a:.3e}"),
            (None, Some(_)) => prop_assert!(false, "congestion created a crossover"),
            _ => {}
        }
    }
}
