//! Ising Model (IM) benchmark generator.
//!
//! Digitized adiabatic evolution of a transverse-field Ising spin chain
//! (Barends et al. [6] in the paper): each Trotter step applies ZZ
//! interactions on alternating bonds and a transverse X rotation on every
//! spin. All bonds of a layer commute, so a fully-inlined program exposes
//! parallelism proportional to the chain length (paper Table 2: factor 66
//! at the default 100 spins).
//!
//! The [`Inlining`] knob reproduces the paper's IM_semi_inlined /
//! IM_fully_inlined variants (Figure 9): without full inlining, module
//! boundaries serialize groups of bonds through a module-entry
//! synchronization ancilla.

use scq_ir::{Circuit, CircuitBuilder};

use crate::primitives::{rx, rz};

/// Degree of module flattening applied by the frontend (paper Section 7.3:
/// "more code inlining creates more parallelism").
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum Inlining {
    /// Bond modules are kept as calls: each group of
    /// [`IsingParams::module_size`] bonds synchronizes on a shared module
    /// ancilla, serializing the groups within a Trotter layer.
    Semi,
    /// All modules are flattened; every bond in a layer is independent.
    #[default]
    Full,
}

impl Inlining {
    /// Short suffix used in circuit names (`"semi"` / `"full"`).
    pub fn suffix(self) -> &'static str {
        match self {
            Inlining::Semi => "semi",
            Inlining::Full => "full",
        }
    }
}

/// Parameters of the [`ising`] generator.
///
/// # Examples
///
/// ```
/// use scq_apps::{ising, Inlining, IsingParams};
/// let c = ising(&IsingParams { spins: 10, trotter_steps: 2, ..Default::default() });
/// assert_eq!(c.num_qubits(), 11); // spins + module ancilla
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct IsingParams {
    /// Number of spins in the chain.
    pub spins: u32,
    /// Number of Trotter steps of the digitized evolution.
    pub trotter_steps: u32,
    /// Inlining level (see [`Inlining`]).
    pub inlining: Inlining,
    /// Bonds per un-inlined module (only used by [`Inlining::Semi`]).
    pub module_size: u32,
}

impl Default for IsingParams {
    /// The paper-scale default: a 100-spin chain, 10 Trotter steps, fully
    /// inlined — landing the Table 2 parallelism factor of ~66.
    fn default() -> Self {
        IsingParams {
            spins: 100,
            trotter_steps: 10,
            inlining: Inlining::Full,
            module_size: 8,
        }
    }
}

/// Emits one ZZ bond interaction: CNOT conjugated Rz on the bond target.
fn zz_bond(b: &mut CircuitBuilder, lo: u32, hi: u32) {
    b.cnot(lo, hi);
    rz(b, hi);
    b.cnot(lo, hi);
}

/// Generates the Ising-model circuit.
///
/// Qubits `0..spins` are the chain; qubit `spins` is the module
/// synchronization ancilla (only touched under [`Inlining::Semi`]).
///
/// # Panics
///
/// Panics if `spins < 2`, `trotter_steps == 0`, or `module_size == 0`.
pub fn ising(params: &IsingParams) -> Circuit {
    assert!(params.spins >= 2, "ising: spins must be at least 2");
    assert!(params.trotter_steps >= 1, "ising: need at least one step");
    assert!(
        params.module_size >= 1,
        "ising: module_size must be positive"
    );
    let n = params.spins;
    let anc = n;
    let name = format!(
        "im-{}-n{}-s{}",
        params.inlining.suffix(),
        n,
        params.trotter_steps
    );
    let mut b = Circuit::builder(name, n + 1);

    // Initial transverse-field ground state.
    for q in 0..n {
        b.prep_z(q);
        b.h(q);
    }

    for _step in 0..params.trotter_steps {
        for parity in 0..2u32 {
            // One layer of ZZ bonds on even (parity 0) or odd bonds.
            let bonds: Vec<u32> = (0..n - 1).filter(|i| i % 2 == parity).collect();
            match params.inlining {
                Inlining::Full => {
                    for &i in &bonds {
                        zz_bond(&mut b, i, i + 1);
                    }
                }
                Inlining::Semi => {
                    for module in bonds.chunks(params.module_size as usize) {
                        // Module prologue: entry synchronization through
                        // the shared ancilla serializes modules.
                        b.prep_z(anc);
                        b.cnot(module[0], anc);
                        for &i in module {
                            zz_bond(&mut b, i, i + 1);
                        }
                        // Module epilogue.
                        b.cnot(module[module.len() - 1] + 1, anc);
                        b.meas_z(anc);
                    }
                }
            }
        }
        // Transverse-field rotation on every spin (fully parallel).
        for q in 0..n {
            rx(&mut b, q);
        }
    }

    for q in 0..n {
        b.meas_z(q);
    }
    b.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use scq_ir::analysis;

    #[test]
    fn default_parallelism_matches_paper() {
        // Paper Table 2: IM parallelism factor = 66.
        let stats = analysis::analyze(&ising(&IsingParams::default()));
        assert!(
            stats.parallelism_factor > 50.0 && stats.parallelism_factor < 80.0,
            "IM parallelism {} outside (50, 80)",
            stats.parallelism_factor
        );
    }

    #[test]
    fn semi_inlining_reduces_parallelism() {
        let full = analysis::analyze(&ising(&IsingParams::default()));
        let semi = analysis::analyze(&ising(&IsingParams {
            inlining: Inlining::Semi,
            ..Default::default()
        }));
        assert!(
            semi.parallelism_factor < full.parallelism_factor / 2.0,
            "semi {} vs full {}",
            semi.parallelism_factor,
            full.parallelism_factor
        );
        assert!(semi.parallelism_factor > 2.0);
    }

    #[test]
    fn parallelism_scales_with_chain_length() {
        let short = analysis::analyze(&ising(&IsingParams {
            spins: 20,
            ..Default::default()
        }));
        let long = analysis::analyze(&ising(&IsingParams {
            spins: 80,
            ..Default::default()
        }));
        assert!(long.parallelism_factor > 3.0 * short.parallelism_factor);
    }

    #[test]
    fn ops_scale_linearly_with_steps() {
        let one = ising(&IsingParams {
            spins: 20,
            trotter_steps: 1,
            ..Default::default()
        });
        let four = ising(&IsingParams {
            spins: 20,
            trotter_steps: 4,
            ..Default::default()
        });
        let per_step = four.len() - one.len();
        assert!(per_step >= 3 * (one.len() - 60)); // minus init/meas overhead
    }

    #[test]
    fn full_inlining_never_touches_ancilla() {
        let c = ising(&IsingParams {
            spins: 10,
            trotter_steps: 2,
            ..Default::default()
        });
        let anc = scq_ir::Qubit::new(10);
        assert!(c.iter().all(|inst| !inst.touches(anc)));
    }

    #[test]
    fn semi_inlining_uses_ancilla() {
        let c = ising(&IsingParams {
            spins: 10,
            trotter_steps: 1,
            inlining: Inlining::Semi,
            module_size: 2,
        });
        let anc = scq_ir::Qubit::new(10);
        assert!(c.iter().any(|inst| inst.touches(anc)));
    }

    #[test]
    fn name_encodes_variant() {
        let c = ising(&IsingParams {
            spins: 4,
            trotter_steps: 1,
            inlining: Inlining::Semi,
            module_size: 2,
        });
        assert_eq!(c.name(), "im-semi-n4-s1");
    }

    #[test]
    #[should_panic(expected = "at least 2")]
    fn rejects_single_spin() {
        ising(&IsingParams {
            spins: 1,
            trotter_steps: 1,
            ..Default::default()
        });
    }
}
