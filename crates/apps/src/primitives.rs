//! Shared gate-level building blocks for the benchmark generators.
//!
//! Everything here lowers directly to the Clifford+T ISA of `scq-ir`:
//! rotations become Solovay-Kitaev-style T/H sequences, Toffolis use the
//! standard 7-T decomposition, and arithmetic uses Cuccaro-style
//! ripple-carry chains. The decompositions are structurally faithful
//! (operand patterns, dependency shapes, T counts); the backend only
//! consumes structure, never simulated amplitudes.

use scq_ir::CircuitBuilder;

/// Number of alternating T/H gates used to approximate one small-angle
/// rotation. Four gates is a deliberately short stand-in for a
/// Solovay-Kitaev sequence; the toolflow's results depend on the serial
/// *chain shape*, not on approximation accuracy.
pub const ROTATION_SEQ_LEN: usize = 4;

/// Appends an Rz-style rotation on `q` as a serial T/H chain.
pub fn rz(b: &mut CircuitBuilder, q: u32) {
    rz_with_len(b, q, ROTATION_SEQ_LEN);
}

/// Appends an Rz-style rotation of configurable sequence length.
pub fn rz_with_len(b: &mut CircuitBuilder, q: u32, len: usize) {
    for k in 0..len {
        if k % 2 == 0 {
            b.t(q);
        } else {
            b.h(q);
        }
    }
}

/// Appends an Rx-style rotation on `q`: H-conjugated Rz.
pub fn rx(b: &mut CircuitBuilder, q: u32) {
    b.h(q);
    rz(b, q);
    b.h(q);
}

/// Appends a Toffoli (CCX) on controls `a`, `b` and target `t` using the
/// textbook 7-T-gate Clifford+T decomposition (15 ops).
///
/// # Panics
///
/// Panics (via the builder) if the three qubits are not distinct and in
/// range.
pub fn toffoli(b: &mut CircuitBuilder, a: u32, c: u32, t: u32) {
    b.h(t);
    b.cnot(c, t);
    b.tdg(t);
    b.cnot(a, t);
    b.t(t);
    b.cnot(c, t);
    b.tdg(t);
    b.cnot(a, t);
    b.t(c);
    b.t(t);
    b.h(t);
    b.cnot(a, c);
    b.tdg(c);
    b.cnot(a, c);
    b.t(a);
}

/// Number of instructions emitted by [`toffoli`].
pub const TOFFOLI_OPS: usize = 15;

/// Appends a multi-controlled Z over `controls` onto `target`, using a
/// ladder of Toffolis through `ancillas` (standard linear-ancilla
/// construction). Requires `ancillas.len() + 1 >= controls.len()` when
/// `controls.len() >= 2`.
///
/// With zero controls this is a plain Z; with one control a CZ.
///
/// # Panics
///
/// Panics if too few ancillas are supplied, or qubits are invalid.
pub fn multi_controlled_z(b: &mut CircuitBuilder, controls: &[u32], ancillas: &[u32], target: u32) {
    match controls.len() {
        0 => {
            b.z(target);
        }
        1 => {
            b.cz(controls[0], target);
        }
        _ => {
            let k = controls.len();
            assert!(
                ancillas.len() >= k - 1,
                "multi_controlled_z: need {} ancillas, got {}",
                k - 1,
                ancillas.len()
            );
            // Compute the AND-ladder into ancillas.
            toffoli(b, controls[0], controls[1], ancillas[0]);
            for i in 2..k {
                toffoli(b, controls[i], ancillas[i - 2], ancillas[i - 1]);
            }
            b.cz(ancillas[k - 2], target);
            // Uncompute the ladder.
            for i in (2..k).rev() {
                toffoli(b, controls[i], ancillas[i - 2], ancillas[i - 1]);
            }
            toffoli(b, controls[0], controls[1], ancillas[0]);
        }
    }
}

/// Appends a Cuccaro-style MAJ block: `(c, s, a)` with carry `c`, sum bit
/// `s`, and carry-out accumulator `a`.
fn maj(b: &mut CircuitBuilder, c: u32, s: u32, a: u32) {
    b.cnot(a, s);
    b.cnot(a, c);
    toffoli(b, c, s, a);
}

/// Appends the inverse UMA block of the Cuccaro adder.
fn uma(b: &mut CircuitBuilder, c: u32, s: u32, a: u32) {
    toffoli(b, c, s, a);
    b.cnot(a, c);
    b.cnot(c, s);
}

/// Appends an in-place ripple-carry addition `bb += aa` over equal-width
/// registers, with `carry` as the incoming-carry scratch qubit.
///
/// The MAJ chain runs up the words and the UMA chain back down, giving the
/// serial carry-dependency the paper's adders exhibit.
///
/// # Panics
///
/// Panics if the registers differ in width or qubits are invalid.
pub fn ripple_add(b: &mut CircuitBuilder, aa: &[u32], bb: &[u32], carry: u32) {
    assert_eq!(aa.len(), bb.len(), "ripple_add: register width mismatch");
    if aa.is_empty() {
        return;
    }
    let w = aa.len();
    maj(b, carry, bb[0], aa[0]);
    for i in 1..w {
        maj(b, aa[i - 1], bb[i], aa[i]);
    }
    for i in (1..w).rev() {
        uma(b, aa[i - 1], bb[i], aa[i]);
    }
    uma(b, carry, bb[0], aa[0]);
}

/// Appends a bitwise XOR of register `src` into `dst` (one CNOT per lane,
/// all lanes independent — the fully-parallel pattern of SHA-1's word
/// operations).
///
/// # Panics
///
/// Panics if the registers differ in width.
pub fn xor_into(b: &mut CircuitBuilder, src: &[u32], dst: &[u32]) {
    assert_eq!(src.len(), dst.len(), "xor_into: register width mismatch");
    for (&s, &d) in src.iter().zip(dst) {
        b.cnot(s, d);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scq_ir::{analysis, Circuit, DependencyDag};

    fn builder(n: u32) -> CircuitBuilder {
        Circuit::builder("prim-test", n)
    }

    #[test]
    fn rz_emits_requested_length() {
        let mut b = builder(1);
        rz(&mut b, 0);
        assert_eq!(b.len(), ROTATION_SEQ_LEN);
        let c = b.finish();
        let dag = DependencyDag::from_circuit(&c);
        assert_eq!(dag.depth(), ROTATION_SEQ_LEN, "rotation must be serial");
    }

    #[test]
    fn rx_wraps_rz_in_hadamards() {
        let mut b = builder(1);
        rx(&mut b, 0);
        let c = b.finish();
        assert_eq!(c.len(), ROTATION_SEQ_LEN + 2);
        assert_eq!(c.instructions()[0].gate(), scq_ir::Gate::H);
        assert_eq!(c.instructions().last().unwrap().gate(), scq_ir::Gate::H);
    }

    #[test]
    fn toffoli_has_seven_t_gates() {
        let mut b = builder(3);
        toffoli(&mut b, 0, 1, 2);
        let c = b.finish();
        assert_eq!(c.len(), TOFFOLI_OPS);
        assert_eq!(c.t_count(), 7);
        assert_eq!(c.two_qubit_count(), 6);
    }

    #[test]
    fn toffoli_parallelism_is_modest() {
        let mut b = builder(3);
        toffoli(&mut b, 0, 1, 2);
        let stats = analysis::analyze(&b.finish());
        assert!(
            stats.parallelism_factor > 1.0 && stats.parallelism_factor < 2.0,
            "toffoli PF = {}",
            stats.parallelism_factor
        );
    }

    #[test]
    fn mcz_zero_and_one_controls() {
        let mut b = builder(2);
        multi_controlled_z(&mut b, &[], &[], 0);
        multi_controlled_z(&mut b, &[1], &[], 0);
        let c = b.finish();
        assert_eq!(c.count_gate(scq_ir::Gate::Z), 1);
        assert_eq!(c.count_gate(scq_ir::Gate::Cz), 1);
    }

    #[test]
    fn mcz_ladder_computes_and_uncomputes() {
        let mut b = builder(8);
        // 4 controls (q0..q3), 3 ancillas (q4..q6), target q7.
        multi_controlled_z(&mut b, &[0, 1, 2, 3], &[4, 5, 6], 7);
        let c = b.finish();
        // 3 toffolis up + 3 down + 1 cz.
        assert_eq!(c.len(), 6 * TOFFOLI_OPS + 1);
        assert_eq!(c.count_gate(scq_ir::Gate::Cz), 1);
    }

    #[test]
    #[should_panic(expected = "need 3 ancillas")]
    fn mcz_rejects_insufficient_ancillas() {
        let mut b = builder(8);
        multi_controlled_z(&mut b, &[0, 1, 2, 3], &[4], 7);
    }

    #[test]
    fn ripple_add_is_carry_serial() {
        let w = 8;
        let mut b = builder(2 * w + 1);
        let aa: Vec<u32> = (0..w).collect();
        let bb: Vec<u32> = (w..2 * w).collect();
        ripple_add(&mut b, &aa, &bb, 2 * w);
        let c = b.finish();
        let dag = DependencyDag::from_circuit(&c);
        // The carry chain makes depth grow linearly with width.
        assert!(dag.depth() as u32 > 4 * w, "depth {}", dag.depth());
        assert_eq!(c.len(), (w as usize) * 2 * (2 + TOFFOLI_OPS));
    }

    #[test]
    #[should_panic(expected = "width mismatch")]
    fn ripple_add_rejects_mismatched_widths() {
        let mut b = builder(4);
        ripple_add(&mut b, &[0], &[1, 2], 3);
    }

    #[test]
    fn xor_into_is_fully_parallel() {
        let w = 16;
        let mut b = builder(2 * w);
        let src: Vec<u32> = (0..w).collect();
        let dst: Vec<u32> = (w..2 * w).collect();
        xor_into(&mut b, &src, &dst);
        let c = b.finish();
        let dag = DependencyDag::from_circuit(&c);
        assert_eq!(dag.depth(), 1);
        assert_eq!(dag.parallelism_factor(), w as f64);
    }

    #[test]
    fn ripple_add_empty_registers_is_noop() {
        let mut b = builder(1);
        ripple_add(&mut b, &[], &[], 0);
        assert!(b.is_empty());
    }
}
