//! SHA-1 decryption benchmark generator.
//!
//! The paper's SHA-1 workload [55] runs the compression function in
//! superposition to invert a digest. Word operations act bitwise across
//! all lanes at once — the source of the application's high parallelism
//! (paper Table 2: parallelism factor 29). Additions use carry-save form
//! so that per-round arithmetic stays lane-parallel; a single ripple-carry
//! conversion runs at the end.

use scq_ir::{Circuit, CircuitBuilder};

use crate::primitives::{ripple_add, toffoli, xor_into};

/// Parameters of the [`sha1`] generator.
///
/// # Examples
///
/// ```
/// use scq_apps::{sha1, Sha1Params};
/// let c = sha1(&Sha1Params { word_bits: 8, rounds: 4 });
/// assert!(c.num_qubits() > 8 * 16);
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Sha1Params {
    /// Word width in bits (real SHA-1 uses 32; smaller widths shrink test
    /// circuits while preserving structure).
    pub word_bits: u32,
    /// Number of compression rounds (real SHA-1 uses 80).
    pub rounds: u32,
}

impl Default for Sha1Params {
    /// Default: full 32-bit words, 12 rounds — large enough to exhibit
    /// the paper's parallelism factor (~29) while staying cheap to
    /// schedule.
    fn default() -> Self {
        Sha1Params {
            word_bits: 32,
            rounds: 12,
        }
    }
}

/// A register of `w` qubits with a logical rotation offset.
///
/// SHA-1's `rotl` operations are free relabelings: rotating the register
/// adjusts which physical qubit holds which bit, without emitting gates.
#[derive(Clone, Debug)]
struct Reg {
    bits: Vec<u32>,
}

impl Reg {
    fn new(start: u32, width: u32) -> Self {
        Reg {
            bits: (start..start + width).collect(),
        }
    }

    fn width(&self) -> usize {
        self.bits.len()
    }

    /// Bit `i` after rotating left by `k`.
    fn bit(&self, i: usize) -> u32 {
        self.bits[i]
    }

    fn rotl(&mut self, k: usize) {
        let w = self.width();
        self.bits.rotate_left(k % w);
    }

    fn as_slice(&self) -> &[u32] {
        &self.bits
    }
}

/// Emits one carry-save addition layer: `(sum, carry) += addend`, all
/// lanes independent (1 CNOT + 1 Toffoli per lane).
fn carry_save_add(b: &mut CircuitBuilder, addend: &Reg, sum: &Reg, carry: &Reg) {
    let w = sum.width();
    for i in 0..w {
        b.cnot(addend.bit(i), sum.bit(i));
        // Carry out of lane i lands in lane i+1 (top carry wraps into the
        // spare lane 0 slot of the carry register — structural only).
        toffoli(b, addend.bit(i), sum.bit(i), carry.bit((i + 1) % w));
    }
}

/// Generates the SHA-1 compression circuit.
///
/// Qubit layout: 16 message words, the five working words `a..e`, an `f`
/// scratch word, carry-save `sum`/`carry` words, and one final-adder
/// scratch qubit.
///
/// # Panics
///
/// Panics if `word_bits < 4` or `rounds == 0`.
pub fn sha1(params: &Sha1Params) -> Circuit {
    assert!(params.word_bits >= 4, "sha1: word_bits must be at least 4");
    assert!(params.rounds >= 1, "sha1: rounds must be at least 1");
    let w = params.word_bits;
    let name = format!("sha1-w{}-r{}", w, params.rounds);

    let mut next = 0u32;
    let mut alloc = |width: u32| {
        let r = Reg::new(next, width);
        next += width;
        r
    };
    let words: Vec<Reg> = (0..16).map(|_| alloc(w)).collect();
    let mut a = alloc(w);
    let mut bw = alloc(w);
    let cw = alloc(w);
    let dw = alloc(w);
    let ew = alloc(w);
    let f = alloc(w);
    let mut sum = alloc(w);
    let carry = alloc(w);
    let final_carry = next;
    next += 1;

    let mut b = Circuit::builder(name, next);

    // Working variables e, d, c, b, a rotate roles each round; represent
    // them as an array indexed by role.
    let mut work = [a.clone(), bw.clone(), cw, dw, ew];

    for t in 0..params.rounds as usize {
        // Message schedule for expanded rounds:
        // w[t] ^= w[t-3] ^ w[t-8] ^ w[t-14]  (lane-parallel XORs).
        if t >= 16 {
            let idx = t % 16;
            for back in [3usize, 8, 14] {
                let src = (t - back) % 16;
                if src != idx {
                    let (s, d) = (
                        words[src].as_slice().to_vec(),
                        words[idx].as_slice().to_vec(),
                    );
                    xor_into(&mut b, &s, &d);
                }
            }
        }
        let wt = &words[t % 16];

        // f = Ch(b, c, d) per lane: f ^= b&c, f ^= d. All lanes parallel.
        for i in 0..w as usize {
            toffoli(&mut b, work[1].bit(i), work[2].bit(i), f.bit(i));
            b.cnot(work[3].bit(i), f.bit(i));
        }

        // temp = rotl5(a) + f + e + w[t] in carry-save form.
        a = work[0].clone();
        a.rotl(5);
        carry_save_add(&mut b, &a, &sum, &carry);
        carry_save_add(&mut b, &f, &sum, &carry);
        carry_save_add(&mut b, &work[4], &sum, &carry);
        carry_save_add(&mut b, wt, &sum, &carry);

        // Uncompute f so the scratch word is reusable next round.
        for i in 0..w as usize {
            b.cnot(work[3].bit(i), f.bit(i));
            toffoli(&mut b, work[1].bit(i), work[2].bit(i), f.bit(i));
        }

        // b = rotl30(b); role rotation e,d,c,b,a <- d,c,b,a,temp.
        bw = work[1].clone();
        bw.rotl(30);
        let old_e = work[4].clone();
        work = [
            sum.clone(),
            work[0].clone(),
            bw.clone(),
            work[2].clone(),
            work[3].clone(),
        ];
        // The displaced e word becomes the next round's carry-save sum.
        sum = old_e;
    }

    // One final ripple-carry conversion out of carry-save form.
    let sum_bits = work[0].as_slice().to_vec();
    let carry_bits = carry.as_slice().to_vec();
    ripple_add(&mut b, &carry_bits, &sum_bits, final_carry);

    for role in &work {
        for i in 0..w as usize {
            b.meas_z(role.bit(i));
        }
    }
    b.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use scq_ir::analysis;

    #[test]
    fn default_shape() {
        let c = sha1(&Sha1Params::default());
        // 16 message + 5 work + f + sum + carry = 24 words + 1 scratch.
        assert_eq!(c.num_qubits(), 24 * 32 + 1);
        assert!(c.len() > 5_000, "ops = {}", c.len());
    }

    #[test]
    fn parallelism_matches_paper_band() {
        // Paper Table 2: SHA-1 parallelism factor = 29.
        let stats = analysis::analyze(&sha1(&Sha1Params::default()));
        assert!(
            stats.parallelism_factor > 18.0 && stats.parallelism_factor < 45.0,
            "SHA-1 parallelism {} outside (18, 45)",
            stats.parallelism_factor
        );
    }

    #[test]
    fn parallelism_tracks_word_width() {
        let narrow = analysis::analyze(&sha1(&Sha1Params {
            word_bits: 8,
            rounds: 4,
        }));
        let wide = analysis::analyze(&sha1(&Sha1Params {
            word_bits: 32,
            rounds: 4,
        }));
        assert!(wide.parallelism_factor > 1.3 * narrow.parallelism_factor);
    }

    #[test]
    fn expanded_rounds_emit_schedule_xors() {
        let short = sha1(&Sha1Params {
            word_bits: 8,
            rounds: 16,
        });
        let long = sha1(&Sha1Params {
            word_bits: 8,
            rounds: 18,
        });
        let per_round = short.len() / 16;
        // Rounds past 16 add schedule XOR traffic on top of a plain round.
        assert!(long.len() > short.len() + per_round);
    }

    #[test]
    fn rotation_is_free() {
        // rotl is a relabeling: the op count of 1 round must not include
        // any swap gates.
        let c = sha1(&Sha1Params {
            word_bits: 8,
            rounds: 1,
        });
        assert_eq!(c.count_gate(scq_ir::Gate::Swap), 0);
    }

    #[test]
    fn measures_all_working_words() {
        let c = sha1(&Sha1Params {
            word_bits: 8,
            rounds: 2,
        });
        assert_eq!(c.count_gate(scq_ir::Gate::MeasZ), 5 * 8);
    }

    #[test]
    #[should_panic(expected = "at least 4")]
    fn rejects_tiny_words() {
        sha1(&Sha1Params {
            word_bits: 2,
            rounds: 1,
        });
    }

    #[test]
    fn reg_rotation_relabels() {
        let mut r = Reg::new(10, 4);
        r.rotl(1);
        assert_eq!(r.as_slice(), &[11, 12, 13, 10]);
        r.rotl(3);
        assert_eq!(r.as_slice(), &[10, 11, 12, 13]);
    }
}
