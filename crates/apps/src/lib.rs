//! Benchmark quantum applications for the surface-code communication
//! study.
//!
//! This crate reproduces the paper's application suite (Table 2) as
//! parameterized circuit generators over the `scq-ir` logical ISA:
//!
//! | Benchmark | Purpose | Paper parallelism factor |
//! |-----------|---------|--------------------------|
//! | [`gse`]   | Ground-state energy of a molecule (QPE) | 1.2 |
//! | [`square_root`] | Grover search for an n-bit square root | 1.5 |
//! | [`sha1`]  | SHA-1 digest inversion | 29 |
//! | [`ising`] | Digitized adiabatic Ising-chain evolution | 66 |
//!
//! The generators substitute for the paper's ScaffCC frontend: they emit
//! the same *structural* programs (operation mix, dependency shape,
//! scaling, parallelism) that the backend schedulers consume. The
//! [`Benchmark`] enum provides paper-default instances and a coarse
//! problem-size knob for design-space sweeps.
//!
//! # Examples
//!
//! ```
//! use scq_apps::Benchmark;
//! use scq_ir::analysis;
//!
//! for bench in Benchmark::ALL {
//!     let circuit = bench.small_circuit();
//!     let stats = analysis::analyze(&circuit);
//!     assert!(stats.total_ops > 0);
//! }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod grover;
mod gse;
mod ising;
pub mod primitives;
mod sha1;

pub use grover::{optimal_iterations, square_root, SqParams};
pub use gse::{gse, GseParams};
pub use ising::{ising, Inlining, IsingParams};
pub use sha1::{sha1, Sha1Params};

use scq_ir::Circuit;

/// The benchmark suite of the paper's evaluation, including the two
/// inlining variants of the Ising model used in Figure 9.
///
/// # Examples
///
/// ```
/// use scq_apps::Benchmark;
///
/// let c = Benchmark::IsingFull.small_circuit();
/// assert!(c.name().starts_with("im-full"));
/// assert_eq!(Benchmark::Gse.to_string(), "GSE");
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Benchmark {
    /// Ground State Estimation (serial; parallelism ~1.2).
    Gse,
    /// Grover square root (mostly serial; parallelism ~1.5).
    SquareRoot,
    /// SHA-1 inversion (parallel; parallelism ~29).
    Sha1,
    /// Ising model, semi-inlined modules (intermediate parallelism).
    IsingSemi,
    /// Ising model, fully inlined (parallel; parallelism ~66).
    IsingFull,
}

impl Benchmark {
    /// All benchmarks, in the order the paper's figures present them.
    pub const ALL: [Benchmark; 5] = [
        Benchmark::Gse,
        Benchmark::SquareRoot,
        Benchmark::Sha1,
        Benchmark::IsingSemi,
        Benchmark::IsingFull,
    ];

    /// The four Table 2 applications (IM in its fully-inlined form).
    pub const TABLE2: [Benchmark; 4] = [
        Benchmark::Gse,
        Benchmark::SquareRoot,
        Benchmark::Sha1,
        Benchmark::IsingFull,
    ];

    /// Display name matching the paper's abbreviations.
    pub fn name(self) -> &'static str {
        match self {
            Benchmark::Gse => "GSE",
            Benchmark::SquareRoot => "SQ",
            Benchmark::Sha1 => "SHA-1",
            Benchmark::IsingSemi => "IM_semi_inlined",
            Benchmark::IsingFull => "IM_fully_inlined",
        }
    }

    /// The parallelism factor the paper reports for this application
    /// (Table 2). `IsingSemi` has no Table 2 entry; its value is the
    /// factor our semi-inlined default exhibits.
    pub fn nominal_parallelism(self) -> f64 {
        match self {
            Benchmark::Gse => 1.2,
            Benchmark::SquareRoot => 1.5,
            Benchmark::Sha1 => 29.0,
            Benchmark::IsingSemi => 12.0,
            Benchmark::IsingFull => 66.0,
        }
    }

    /// Generates the paper-default instance of this benchmark.
    pub fn default_circuit(self) -> Circuit {
        match self {
            Benchmark::Gse => gse(&GseParams::default()),
            Benchmark::SquareRoot => square_root(&SqParams::default()),
            Benchmark::Sha1 => sha1(&Sha1Params::default()),
            Benchmark::IsingSemi => ising(&IsingParams {
                inlining: Inlining::Semi,
                ..Default::default()
            }),
            Benchmark::IsingFull => ising(&IsingParams::default()),
        }
    }

    /// Generates a reduced instance suitable for fast tests and
    /// simulator calibration.
    pub fn small_circuit(self) -> Circuit {
        self.scaled_circuit(0)
    }

    /// Generates an instance at problem-size step `scale` (0 = smallest).
    ///
    /// Each step grows the dominant problem parameter, so the logical op
    /// count rises monotonically with `scale`. Scales beyond ~4 produce
    /// circuits too large to schedule interactively; the design-space
    /// explorer extrapolates past that analytically.
    pub fn scaled_circuit(self, scale: u32) -> Circuit {
        match self {
            Benchmark::Gse => gse(&GseParams {
                molecule_size: 6 + 4 * scale,
                precision_bits: 3 + scale,
            }),
            Benchmark::SquareRoot => square_root(&SqParams {
                bits: 4 + scale,
                iterations: None,
                target: 9 + u64::from(scale),
            }),
            Benchmark::Sha1 => sha1(&Sha1Params {
                word_bits: 8 + 8 * scale.min(3),
                rounds: 4 * (scale + 1),
            }),
            Benchmark::IsingSemi => ising(&IsingParams {
                spins: 24 + 24 * scale,
                trotter_steps: 2 * (scale + 1),
                inlining: Inlining::Semi,
                module_size: 8,
            }),
            Benchmark::IsingFull => ising(&IsingParams {
                spins: 24 + 24 * scale,
                trotter_steps: 2 * (scale + 1),
                inlining: Inlining::Full,
                module_size: 8,
            }),
        }
    }
}

impl std::fmt::Display for Benchmark {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scq_ir::analysis;

    #[test]
    fn all_defaults_generate() {
        for bench in Benchmark::ALL {
            let c = bench.default_circuit();
            assert!(!c.is_empty(), "{bench} produced an empty circuit");
            assert!(c.num_qubits() > 0);
        }
    }

    #[test]
    fn table2_parallelism_ordering() {
        // The paper's qualitative ordering: GSE < SQ << SHA-1 < IM.
        let pf: Vec<f64> = Benchmark::TABLE2
            .iter()
            .map(|b| analysis::analyze(&b.default_circuit()).parallelism_factor)
            .collect();
        assert!(pf[0] < pf[1], "GSE {} !< SQ {}", pf[0], pf[1]);
        assert!(pf[1] * 5.0 < pf[2], "SQ {} not << SHA-1 {}", pf[1], pf[2]);
        assert!(pf[2] < pf[3], "SHA-1 {} !< IM {}", pf[2], pf[3]);
    }

    #[test]
    fn measured_parallelism_near_nominal() {
        for bench in Benchmark::ALL {
            let pf = analysis::analyze(&bench.default_circuit()).parallelism_factor;
            let nominal = bench.nominal_parallelism();
            let ratio = pf / nominal;
            assert!(
                ratio > 0.5 && ratio < 2.0,
                "{bench}: measured {pf:.1} vs nominal {nominal}"
            );
        }
    }

    #[test]
    fn scaled_circuits_grow() {
        for bench in Benchmark::ALL {
            let s0 = bench.scaled_circuit(0).len();
            let s1 = bench.scaled_circuit(1).len();
            let s2 = bench.scaled_circuit(2).len();
            assert!(s0 < s1 && s1 < s2, "{bench}: {s0}, {s1}, {s2}");
        }
    }

    #[test]
    fn small_circuits_are_small() {
        for bench in Benchmark::ALL {
            let c = bench.small_circuit();
            assert!(
                c.len() < 100_000,
                "{bench} small circuit has {} ops",
                c.len()
            );
        }
    }

    #[test]
    fn names_match_paper() {
        assert_eq!(Benchmark::Sha1.name(), "SHA-1");
        assert_eq!(Benchmark::IsingFull.name(), "IM_fully_inlined");
        assert_eq!(Benchmark::ALL.len(), 5);
    }
}
