//! Square Root (SQ) benchmark generator.
//!
//! Grover search [32] for the square root of an `n`-bit number: the oracle
//! squares the candidate register with shift-and-add arithmetic and
//! phase-flips on a match. Ripple-carry chains make the oracle — and hence
//! the application — mostly serial (paper Table 2: parallelism factor 1.5).

use scq_ir::Circuit;

use crate::primitives::{multi_controlled_z, ripple_add, toffoli};

/// Parameters of the [`square_root`] generator.
///
/// # Examples
///
/// ```
/// use scq_apps::{square_root, SqParams};
/// let c = square_root(&SqParams { bits: 4, iterations: Some(2), target: 9 });
/// assert!(c.len() > 0);
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SqParams {
    /// Width of the candidate register (the number whose root is sought
    /// has `2*bits` bits).
    pub bits: u32,
    /// Number of Grover iterations; `None` uses the optimal
    /// `floor(pi/4 * 2^(bits/2))`.
    pub iterations: Option<u32>,
    /// The number whose square root is sought (only its low `2*bits` bits
    /// matter; used to place the oracle's phase-flip pattern).
    pub target: u64,
}

impl Default for SqParams {
    /// Default: 6-bit candidate register with the optimal iteration count.
    fn default() -> Self {
        SqParams {
            bits: 6,
            iterations: None,
            target: 25,
        }
    }
}

/// Number of Grover iterations used for a given register width when
/// [`SqParams::iterations`] is `None`: `floor(pi/4 * sqrt(2^bits))`.
pub fn optimal_iterations(bits: u32) -> u32 {
    let n = (bits.min(62)) as f64;
    ((std::f64::consts::PI / 4.0) * n.exp2().sqrt())
        .floor()
        .max(1.0) as u32
}

/// Generates the SQ (Grover square-root) circuit.
///
/// Qubit layout:
///
/// - `0..n`: candidate register `x`,
/// - `n..3n`: accumulator for `x^2`,
/// - `3n`: ripple-carry scratch,
/// - `3n+1 .. 3n+1+(2n-1)`: Toffoli-ladder ancillas for the phase oracle,
/// - last qubit: phase target.
///
/// # Panics
///
/// Panics if `bits < 2`.
pub fn square_root(params: &SqParams) -> Circuit {
    assert!(params.bits >= 2, "square_root: bits must be at least 2");
    let n = params.bits;
    let acc0 = n;
    let acc_w = 2 * n;
    let carry = n + acc_w;
    let anc0 = carry + 1;
    let anc_w = acc_w - 1;
    let phase = anc0 + anc_w;
    let total = phase + 1;
    let iterations = params.iterations.unwrap_or_else(|| optimal_iterations(n));

    let name = format!("sq-n{n}-i{iterations}");
    let mut b = Circuit::builder(name, total);

    let x: Vec<u32> = (0..n).collect();
    let acc: Vec<u32> = (acc0..acc0 + acc_w).collect();
    let ancs: Vec<u32> = (anc0..anc0 + anc_w).collect();

    // Uniform superposition over candidates; phase target in |->.
    for &q in &x {
        b.h(q);
    }
    b.x(phase);
    b.h(phase);

    for _iter in 0..iterations {
        // Oracle part 1: accumulate x^2 by shift-and-add. Each partial
        // product is gated on bit x_i and ripples through the carry chain.
        for i in 0..n as usize {
            toffoli(&mut b, x[i], acc[i], carry);
            let window: Vec<u32> = acc[i..i + n as usize].to_vec();
            ripple_add(&mut b, &x, &window, carry);
        }
        // Oracle part 2: phase-flip when acc == target.
        for (i, &q) in acc.iter().enumerate() {
            if (params.target >> i) & 1 == 0 {
                b.x(q);
            }
        }
        multi_controlled_z(&mut b, &acc, &ancs, phase);
        for (i, &q) in acc.iter().enumerate() {
            if (params.target >> i) & 1 == 0 {
                b.x(q);
            }
        }
        // Oracle part 3: uncompute the square (adder chains are their own
        // structural mirror; re-running them restores the dependency
        // pattern of the reverse computation).
        for i in (0..n as usize).rev() {
            let window: Vec<u32> = acc[i..i + n as usize].to_vec();
            ripple_add(&mut b, &x, &window, carry);
            toffoli(&mut b, x[i], acc[i], carry);
        }
        // Diffusion operator on x.
        for &q in &x {
            b.h(q);
            b.x(q);
        }
        multi_controlled_z(&mut b, &x, &ancs[..(n as usize - 1)], phase);
        for &q in &x {
            b.x(q);
            b.h(q);
        }
    }

    for &q in &x {
        b.meas_z(q);
    }
    b.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use scq_ir::analysis;

    fn small() -> Circuit {
        square_root(&SqParams {
            bits: 4,
            iterations: Some(2),
            target: 9,
        })
    }

    #[test]
    fn optimal_iteration_count() {
        assert_eq!(optimal_iterations(2), 1);
        assert_eq!(optimal_iterations(4), 3);
        assert_eq!(optimal_iterations(8), 12);
    }

    #[test]
    fn qubit_layout_width() {
        let c = small();
        // n + 2n + 1 + (2n-1) + 1 = 5n + 1.
        assert_eq!(c.num_qubits(), 5 * 4 + 1);
    }

    #[test]
    fn parallelism_matches_paper_band() {
        // Paper Table 2: SQ parallelism factor = 1.5.
        let stats = analysis::analyze(&square_root(&SqParams::default()));
        assert!(
            stats.parallelism_factor > 1.2 && stats.parallelism_factor < 2.0,
            "SQ parallelism {} outside (1.2, 2.0)",
            stats.parallelism_factor
        );
    }

    #[test]
    fn ops_scale_with_iterations() {
        let one = square_root(&SqParams {
            bits: 4,
            iterations: Some(1),
            target: 9,
        });
        let two = small();
        assert!(two.len() > one.len() * 3 / 2);
    }

    #[test]
    fn measures_candidate_register() {
        let c = small();
        assert_eq!(c.count_gate(scq_ir::Gate::MeasZ), 4);
    }

    #[test]
    fn target_pattern_changes_oracle_x_count() {
        let all_ones = square_root(&SqParams {
            bits: 4,
            iterations: Some(1),
            target: 0xFF,
        });
        let zeros = square_root(&SqParams {
            bits: 4,
            iterations: Some(1),
            target: 0,
        });
        // target == 0 flips every acc bit twice per iteration.
        assert!(zeros.count_gate(scq_ir::Gate::X) > all_ones.count_gate(scq_ir::Gate::X));
    }

    #[test]
    #[should_panic(expected = "at least 2")]
    fn rejects_tiny_register() {
        square_root(&SqParams {
            bits: 1,
            iterations: Some(1),
            target: 1,
        });
    }
}
