//! Ground State Estimation (GSE) benchmark generator.
//!
//! Iterative quantum phase estimation of a molecular Hamiltonian
//! (Whitfield et al. [80] in the paper): one ancilla qubit repeatedly
//! measures phase bits of a controlled Trotterized evolution over the
//! system register. Every Hamiltonian term threads through the single
//! phase ancilla, which is why the application is almost entirely serial
//! (paper Table 2: parallelism factor 1.2).

use scq_ir::Circuit;

use crate::primitives::rz;

/// Parameters of the [`gse`] generator.
///
/// # Examples
///
/// ```
/// use scq_apps::{gse, GseParams};
/// let c = gse(&GseParams { molecule_size: 8, precision_bits: 4 });
/// assert_eq!(c.num_qubits(), 9); // system + 1 phase ancilla
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct GseParams {
    /// Number of spin orbitals in the simulated molecule (system qubits).
    pub molecule_size: u32,
    /// Phase-estimation precision: number of measured phase bits, i.e.
    /// the number of controlled-evolution rounds.
    pub precision_bits: u32,
}

impl Default for GseParams {
    /// The paper-scale default: a 16-orbital molecule read to 8 phase bits.
    fn default() -> Self {
        GseParams {
            molecule_size: 16,
            precision_bits: 8,
        }
    }
}

/// Generates the GSE circuit.
///
/// Layout: qubits `0..m` are the system register; qubit `m` is the phase
/// ancilla. Each precision round prepares the ancilla, applies one
/// controlled-evolution pass over all Hamiltonian terms (single-site terms
/// on even orbitals, nearest-neighbour ZZ couplings on odd ones), applies
/// the measurement-feedback rotation, and measures.
///
/// # Panics
///
/// Panics if `molecule_size < 2` (a molecule needs at least one coupling).
pub fn gse(params: &GseParams) -> Circuit {
    assert!(
        params.molecule_size >= 2,
        "gse: molecule_size must be at least 2"
    );
    let m = params.molecule_size;
    let anc = m;
    let name = format!("gse-m{}-p{}", m, params.precision_bits);
    let mut b = Circuit::builder(name, m + 1);

    // System initialization: Hartree-Fock-style reference state.
    for q in 0..m {
        b.prep_z(q);
        if q % 2 == 0 {
            b.x(q);
        }
    }

    for _round in 0..params.precision_bits {
        b.prep_z(anc);
        b.h(anc);
        for j in 0..m {
            if j % 2 == 1 {
                // ZZ coupling term with orbital j-1, controlled on the
                // phase ancilla: basis change, controlled-Rz core, undo.
                b.cnot(j - 1, j);
                b.cnot(anc, j);
                rz(&mut b, j);
                b.cnot(anc, j);
                b.cnot(j - 1, j);
                b.s(j); // trailing frame correction, off the ancilla path
            } else {
                // Single-site term, controlled on the phase ancilla.
                b.cnot(anc, j);
                rz(&mut b, j);
                b.cnot(anc, j);
            }
        }
        // Measurement-feedback rotation and readout of this phase bit.
        rz(&mut b, anc);
        b.h(anc);
        b.meas_z(anc);
    }
    b.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use scq_ir::analysis;

    #[test]
    fn default_shape() {
        let c = gse(&GseParams::default());
        assert_eq!(c.num_qubits(), 17);
        assert!(c.len() > 500, "ops = {}", c.len());
    }

    #[test]
    fn parallelism_matches_paper_band() {
        // Paper Table 2: GSE parallelism factor = 1.2.
        let stats = analysis::analyze(&gse(&GseParams::default()));
        assert!(
            stats.parallelism_factor > 1.0 && stats.parallelism_factor < 1.5,
            "GSE parallelism {} outside (1.0, 1.5)",
            stats.parallelism_factor
        );
    }

    #[test]
    fn ops_scale_with_both_parameters() {
        let small = gse(&GseParams {
            molecule_size: 8,
            precision_bits: 4,
        });
        let wider = gse(&GseParams {
            molecule_size: 16,
            precision_bits: 4,
        });
        let deeper = gse(&GseParams {
            molecule_size: 8,
            precision_bits: 8,
        });
        assert!(wider.len() > small.len());
        assert!(deeper.len() > small.len());
    }

    #[test]
    fn each_round_measures_the_ancilla() {
        let p = 5;
        let c = gse(&GseParams {
            molecule_size: 4,
            precision_bits: p,
        });
        assert_eq!(c.count_gate(scq_ir::Gate::MeasZ), p as usize);
    }

    #[test]
    #[should_panic(expected = "at least 2")]
    fn rejects_degenerate_molecule() {
        gse(&GseParams {
            molecule_size: 1,
            precision_bits: 1,
        });
    }

    #[test]
    fn name_encodes_parameters() {
        let c = gse(&GseParams {
            molecule_size: 4,
            precision_bits: 2,
        });
        assert_eq!(c.name(), "gse-m4-p2");
    }
}
