//! Spot-check: prints SHA-1 generator op counts across widths/rounds.

fn main() {
    for (w, r) in [(8u32, 4u32), (16, 4), (32, 4), (32, 8)] {
        let c = scq_apps::sha1(&scq_apps::Sha1Params {
            word_bits: w,
            rounds: r,
        });
        let s = scq_ir::analysis::analyze(&c);
        println!(
            "sha1 w={w} r={r}: ops={} depth={} pf={:.2}",
            s.total_ops, s.depth, s.parallelism_factor
        );
    }
    for b in scq_apps::Benchmark::ALL {
        let s = scq_ir::analysis::analyze(&b.default_circuit());
        println!(
            "{b}: ops={} qubits={} depth={} pf={:.2}",
            s.total_ops, s.num_qubits, s.depth, s.parallelism_factor
        );
    }
}
