//! Data-dependency DAG over a circuit's instructions.

use crate::circuit::{Circuit, Instruction};
#[cfg(test)]
use crate::Qubit;

/// The data-dependency graph of a [`Circuit`].
///
/// Node `i` is instruction `i` of the source circuit; an edge `a -> b`
/// means instruction `b` reads or writes a qubit last touched by `a`.
/// Program order is a topological order by construction, which the
/// schedulers in `scq-braid` and `scq-teleport` rely on.
///
/// The DAG also precomputes the two quantities the paper's optimizations
/// are driven by:
///
/// - **ASAP level** of each op, giving the critical-path length
///   ([`DependencyDag::depth`]) and the *parallelism factor* (paper
///   Table 2): total ops divided by depth;
/// - **criticality** of each op (paper Policy 3: "how many future
///   operations depend on it") computed as the longest chain of dependent
///   ops below it.
///
/// # Examples
///
/// ```
/// use scq_ir::{Circuit, DependencyDag};
///
/// let mut b = Circuit::builder("chain", 2);
/// b.h(0).t(0).cnot(0, 1).meas_z(1);
/// let dag = DependencyDag::from_circuit(&b.finish());
///
/// assert_eq!(dag.depth(), 4);
/// assert_eq!(dag.criticality(0), 4); // whole chain hangs off the H
/// assert_eq!(dag.criticality(3), 1); // the final measurement
/// ```
#[derive(Clone, Debug)]
pub struct DependencyDag {
    preds: Vec<Vec<u32>>,
    succs: Vec<Vec<u32>>,
    asap: Vec<u32>,
    criticality: Vec<u32>,
}

impl DependencyDag {
    /// Builds the dependency DAG of `circuit`.
    ///
    /// Construction is `O(ops)`: each instruction depends on the previous
    /// instruction touching each of its operands.
    pub fn from_circuit(circuit: &Circuit) -> Self {
        let n = circuit.len();
        let mut preds: Vec<Vec<u32>> = vec![Vec::new(); n];
        let mut succs: Vec<Vec<u32>> = vec![Vec::new(); n];
        let mut last_touch: Vec<Option<u32>> = vec![None; circuit.num_qubits() as usize];

        for (i, inst) in circuit.iter().enumerate() {
            for &q in inst.qubits() {
                if let Some(p) = last_touch[q.index()] {
                    // Avoid duplicate edges when both operands were last
                    // touched by the same instruction.
                    if preds[i].last() != Some(&p) && !preds[i].contains(&p) {
                        preds[i].push(p);
                        succs[p as usize].push(i as u32);
                    }
                }
                last_touch[q.index()] = Some(i as u32);
            }
        }

        let mut asap = vec![0u32; n];
        for i in 0..n {
            asap[i] = preds[i]
                .iter()
                .map(|&p| asap[p as usize] + 1)
                .max()
                .unwrap_or(0);
        }

        let mut criticality = vec![1u32; n];
        for i in (0..n).rev() {
            criticality[i] = 1 + succs[i]
                .iter()
                .map(|&s| criticality[s as usize])
                .max()
                .unwrap_or(0);
        }

        DependencyDag {
            preds,
            succs,
            asap,
            criticality,
        }
    }

    /// Number of nodes (instructions).
    pub fn len(&self) -> usize {
        self.preds.len()
    }

    /// Returns `true` for the DAG of an empty circuit.
    pub fn is_empty(&self) -> bool {
        self.preds.is_empty()
    }

    /// The direct dependencies of instruction `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.len()`.
    pub fn preds(&self, i: usize) -> &[u32] {
        &self.preds[i]
    }

    /// The direct dependents of instruction `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.len()`.
    pub fn succs(&self, i: usize) -> &[u32] {
        &self.succs[i]
    }

    /// In-degree of instruction `i` (number of direct dependencies).
    pub fn in_degree(&self, i: usize) -> usize {
        self.preds[i].len()
    }

    /// ASAP (as-soon-as-possible) level of instruction `i`: the length of
    /// the longest dependency chain strictly above it.
    pub fn asap_level(&self, i: usize) -> u32 {
        self.asap[i]
    }

    /// The ASAP levels of all instructions.
    pub fn asap_levels(&self) -> &[u32] {
        &self.asap
    }

    /// Criticality of instruction `i`: the number of ops on the longest
    /// dependency chain starting at `i` (inclusive). Sinks have
    /// criticality 1. Used by braid priority Policy 3.
    pub fn criticality(&self, i: usize) -> u32 {
        self.criticality[i]
    }

    /// Critical-path length in ops (the circuit *depth*): the minimum
    /// number of timesteps needed with unlimited hardware parallelism.
    pub fn depth(&self) -> usize {
        self.asap.iter().map(|&l| l as usize + 1).max().unwrap_or(0)
    }

    /// Number of ops at each ASAP level: the circuit's *width profile*.
    ///
    /// `level_widths()[t]` is how many ops could execute concurrently at
    /// ideal timestep `t`.
    pub fn level_widths(&self) -> Vec<usize> {
        let mut widths = vec![0usize; self.depth()];
        for &l in &self.asap {
            widths[l as usize] += 1;
        }
        widths
    }

    /// The ideal parallelism factor (paper Table 2): average number of
    /// logical ops concurrently executable with unconstrained hardware,
    /// i.e. `total ops / depth`. Empty circuits report 0.
    pub fn parallelism_factor(&self) -> f64 {
        if self.is_empty() {
            return 0.0;
        }
        self.len() as f64 / self.depth() as f64
    }

    /// Critical-path length under a per-instruction latency model.
    ///
    /// `latency(i, inst)` gives the cost of instruction `i`; the result is
    /// the maximum total latency along any dependency chain. With
    /// `latency = |_, _| 1` this equals [`DependencyDag::depth`].
    pub fn weighted_critical_path<F>(&self, circuit: &Circuit, mut latency: F) -> u64
    where
        F: FnMut(usize, &Instruction) -> u64,
    {
        assert_eq!(circuit.len(), self.len(), "circuit does not match this DAG");
        let mut finish = vec![0u64; self.len()];
        let mut best = 0u64;
        for (i, inst) in circuit.iter().enumerate() {
            let start = self.preds[i]
                .iter()
                .map(|&p| finish[p as usize])
                .max()
                .unwrap_or(0);
            finish[i] = start + latency(i, inst);
            best = best.max(finish[i]);
        }
        best
    }

    /// Indices of instructions with no dependencies (the initial ready set).
    pub fn sources(&self) -> Vec<usize> {
        (0..self.len())
            .filter(|&i| self.preds[i].is_empty())
            .collect()
    }

    /// Indices of instructions with no dependents.
    pub fn sinks(&self) -> Vec<usize> {
        (0..self.len())
            .filter(|&i| self.succs[i].is_empty())
            .collect()
    }

    /// Verifies internal invariants; used by tests and debug assertions.
    ///
    /// Checks that edges are symmetric between `preds` and `succs`, point
    /// backwards in program order, and that ASAP levels are consistent.
    pub fn check_invariants(&self) -> bool {
        for i in 0..self.len() {
            for &p in &self.preds[i] {
                if p as usize >= i || !self.succs[p as usize].contains(&(i as u32)) {
                    return false;
                }
            }
            let expect = self.preds[i]
                .iter()
                .map(|&p| self.asap[p as usize] + 1)
                .max()
                .unwrap_or(0);
            if self.asap[i] != expect {
                return false;
            }
        }
        true
    }
}

/// Extracts, for each instruction, the qubit pair of a two-qubit gate.
///
/// Helper for schedulers: returns `None` for single-qubit instructions.
#[cfg(test)]
fn two_qubit_operands(inst: &Instruction) -> Option<(Qubit, Qubit)> {
    let qs = inst.qubits();
    if qs.len() == 2 {
        Some((qs[0], qs[1]))
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Circuit;

    fn chain() -> Circuit {
        let mut b = Circuit::builder("chain", 1);
        b.h(0).t(0).s(0).meas_z(0);
        b.finish()
    }

    fn diamond() -> Circuit {
        // h q0; h q1; cnot q0,q1; meas both: classic fork-join.
        let mut b = Circuit::builder("diamond", 2);
        b.h(0).h(1).cnot(0, 1).meas_z(0).meas_z(1);
        b.finish()
    }

    #[test]
    fn chain_has_linear_depth() {
        let dag = DependencyDag::from_circuit(&chain());
        assert_eq!(dag.depth(), 4);
        assert_eq!(dag.parallelism_factor(), 1.0);
        assert!(dag.check_invariants());
    }

    #[test]
    fn diamond_structure() {
        let dag = DependencyDag::from_circuit(&diamond());
        assert_eq!(dag.depth(), 3);
        assert_eq!(dag.sources(), vec![0, 1]);
        assert_eq!(dag.sinks(), vec![3, 4]);
        assert_eq!(dag.preds(2), &[0, 1]);
        assert_eq!(dag.succs(2), &[3, 4]);
        assert!(dag.check_invariants());
    }

    #[test]
    fn asap_levels() {
        let dag = DependencyDag::from_circuit(&diamond());
        assert_eq!(dag.asap_levels(), &[0, 0, 1, 2, 2]);
        assert_eq!(dag.level_widths(), vec![2, 1, 2]);
    }

    #[test]
    fn criticality_counts_longest_downstream_chain() {
        let dag = DependencyDag::from_circuit(&diamond());
        // h -> cnot -> meas = 3 ops on the longest chain from each source.
        assert_eq!(dag.criticality(0), 3);
        assert_eq!(dag.criticality(1), 3);
        assert_eq!(dag.criticality(2), 2);
        assert_eq!(dag.criticality(3), 1);
    }

    #[test]
    fn parallelism_factor_of_parallel_block() {
        let mut b = Circuit::builder("wide", 8);
        for q in 0..8 {
            b.h(q);
        }
        let dag = DependencyDag::from_circuit(&b.finish());
        assert_eq!(dag.depth(), 1);
        assert_eq!(dag.parallelism_factor(), 8.0);
    }

    #[test]
    fn weighted_critical_path_uses_latencies() {
        let c = diamond();
        let dag = DependencyDag::from_circuit(&c);
        // Unit latencies reproduce depth.
        assert_eq!(dag.weighted_critical_path(&c, |_, _| 1), 3);
        // CNOT is 10x: path h(1) + cnot(10) + meas(1) = 12.
        let w = dag.weighted_critical_path(
            &c,
            |_, inst| {
                if inst.gate().is_two_qubit() {
                    10
                } else {
                    1
                }
            },
        );
        assert_eq!(w, 12);
    }

    #[test]
    fn no_duplicate_edge_for_shared_predecessor() {
        // swap q0,q1 then cnot q0,q1: the cnot depends on the swap once.
        let mut b = Circuit::builder("dup", 2);
        b.swap(0, 1).cnot(0, 1);
        let dag = DependencyDag::from_circuit(&b.finish());
        assert_eq!(dag.preds(1), &[0]);
        assert_eq!(dag.succs(0), &[1]);
    }

    #[test]
    fn empty_circuit() {
        let c = Circuit::builder("empty", 3).finish();
        let dag = DependencyDag::from_circuit(&c);
        assert!(dag.is_empty());
        assert_eq!(dag.depth(), 0);
        assert_eq!(dag.parallelism_factor(), 0.0);
        assert!(dag.check_invariants());
    }

    #[test]
    #[should_panic(expected = "does not match")]
    fn weighted_cp_rejects_mismatched_circuit() {
        let dag = DependencyDag::from_circuit(&chain());
        let other = diamond();
        let _ = dag.weighted_critical_path(&other, |_, _| 1);
    }

    #[test]
    fn two_qubit_operand_helper() {
        let c = diamond();
        assert!(two_qubit_operands(&c.instructions()[0]).is_none());
        let (a, b) = two_qubit_operands(&c.instructions()[2]).unwrap();
        assert_eq!((a.index(), b.index()), (0, 1));
    }
}
