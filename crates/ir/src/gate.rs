//! The logical gate set.

use std::fmt;
use std::str::FromStr;

use crate::error::ParseGateError;

/// A logical gate in the fault-tolerant Clifford+T instruction set.
///
/// This is the universal set the paper's toolflow schedules (Section 2.1:
/// "a small set of operations is sufficient to approximate all possible
/// operations... akin to a classical instruction set"). State preparation
/// and measurement are included because the dependency DAG must order them
/// with respect to unitary gates.
///
/// Gates are classified along the axes the backend cares about:
///
/// - **arity**: one- vs two-qubit ([`Gate::arity`]),
/// - **magic-state consumption**: `T`/`Tdg` require a distilled magic state
///   delivered from an ancilla factory (paper Section 4.3),
/// - **Clifford-ness**: Clifford gates are cheap transversal/code
///   deformation operations; non-Clifford gates dominate cost.
///
/// # Examples
///
/// ```
/// use scq_ir::Gate;
///
/// assert_eq!(Gate::Cnot.arity(), 2);
/// assert!(Gate::T.needs_magic_state());
/// assert!(Gate::H.is_clifford());
/// assert_eq!("cnot".parse::<Gate>().unwrap(), Gate::Cnot);
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Gate {
    /// Prepare a qubit in the `|0>` state.
    PrepZ,
    /// Prepare a qubit in the `|+>` state.
    PrepX,
    /// Measure a qubit in the Z basis.
    MeasZ,
    /// Measure a qubit in the X basis.
    MeasX,
    /// Pauli X (bit flip).
    X,
    /// Pauli Y.
    Y,
    /// Pauli Z (phase flip).
    Z,
    /// Hadamard.
    H,
    /// Phase gate (sqrt of Z).
    S,
    /// Inverse phase gate.
    Sdg,
    /// T gate (pi/8 rotation); consumes one magic state.
    T,
    /// Inverse T gate; consumes one magic state.
    Tdg,
    /// Controlled-NOT. First operand is the control.
    Cnot,
    /// Controlled-Z.
    Cz,
    /// Swap two logical qubits.
    Swap,
}

impl Gate {
    /// All gates in the instruction set, in declaration order.
    pub const ALL: [Gate; 15] = [
        Gate::PrepZ,
        Gate::PrepX,
        Gate::MeasZ,
        Gate::MeasX,
        Gate::X,
        Gate::Y,
        Gate::Z,
        Gate::H,
        Gate::S,
        Gate::Sdg,
        Gate::T,
        Gate::Tdg,
        Gate::Cnot,
        Gate::Cz,
        Gate::Swap,
    ];

    /// Number of qubit operands this gate takes (1 or 2).
    pub fn arity(self) -> usize {
        match self {
            Gate::Cnot | Gate::Cz | Gate::Swap => 2,
            _ => 1,
        }
    }

    /// Returns `true` for two-qubit gates, the ones that require
    /// communication when their operands live in distant tiles.
    pub fn is_two_qubit(self) -> bool {
        self.arity() == 2
    }

    /// Returns `true` if this gate is in the Clifford group (or is a
    /// preparation/measurement, which surface codes also implement
    /// natively). Only `T`/`Tdg` are non-Clifford.
    pub fn is_clifford(self) -> bool {
        !self.needs_magic_state()
    }

    /// Returns `true` if executing this gate fault-tolerantly consumes a
    /// distilled magic state (paper Section 2.2: "most proposals for
    /// performing the T operation require ... magic state").
    pub fn needs_magic_state(self) -> bool {
        matches!(self, Gate::T | Gate::Tdg)
    }

    /// Returns `true` for measurement gates.
    pub fn is_measurement(self) -> bool {
        matches!(self, Gate::MeasZ | Gate::MeasX)
    }

    /// Returns `true` for state-preparation gates.
    pub fn is_preparation(self) -> bool {
        matches!(self, Gate::PrepZ | Gate::PrepX)
    }

    /// The textual mnemonic used in the QASM dump, e.g. `"cnot"`.
    pub fn mnemonic(self) -> &'static str {
        match self {
            Gate::PrepZ => "prepz",
            Gate::PrepX => "prepx",
            Gate::MeasZ => "measz",
            Gate::MeasX => "measx",
            Gate::X => "x",
            Gate::Y => "y",
            Gate::Z => "z",
            Gate::H => "h",
            Gate::S => "s",
            Gate::Sdg => "sdg",
            Gate::T => "t",
            Gate::Tdg => "tdg",
            Gate::Cnot => "cnot",
            Gate::Cz => "cz",
            Gate::Swap => "swap",
        }
    }
}

impl fmt::Display for Gate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.mnemonic())
    }
}

impl FromStr for Gate {
    type Err = ParseGateError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let lower = s.to_ascii_lowercase();
        Gate::ALL
            .iter()
            .copied()
            .find(|g| g.mnemonic() == lower)
            .ok_or_else(|| ParseGateError::new(s))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arity_partitions_gate_set() {
        for g in Gate::ALL {
            match g {
                Gate::Cnot | Gate::Cz | Gate::Swap => assert_eq!(g.arity(), 2),
                _ => assert_eq!(g.arity(), 1),
            }
        }
    }

    #[test]
    fn only_t_gates_need_magic_states() {
        let magic: Vec<Gate> = Gate::ALL
            .iter()
            .copied()
            .filter(|g| g.needs_magic_state())
            .collect();
        assert_eq!(magic, vec![Gate::T, Gate::Tdg]);
    }

    #[test]
    fn clifford_is_complement_of_magic() {
        for g in Gate::ALL {
            assert_ne!(g.is_clifford(), g.needs_magic_state());
        }
    }

    #[test]
    fn mnemonic_roundtrip() {
        for g in Gate::ALL {
            let parsed: Gate = g.mnemonic().parse().unwrap();
            assert_eq!(parsed, g);
        }
    }

    #[test]
    fn parse_is_case_insensitive() {
        assert_eq!("CNOT".parse::<Gate>().unwrap(), Gate::Cnot);
        assert_eq!("Tdg".parse::<Gate>().unwrap(), Gate::Tdg);
    }

    #[test]
    fn parse_rejects_unknown() {
        let err = "toffoli".parse::<Gate>().unwrap_err();
        assert!(err.to_string().contains("toffoli"));
    }

    #[test]
    fn display_matches_mnemonic() {
        assert_eq!(Gate::Sdg.to_string(), "sdg");
        assert_eq!(Gate::PrepZ.to_string(), "prepz");
    }

    #[test]
    fn measurement_and_preparation_classification() {
        assert!(Gate::MeasZ.is_measurement());
        assert!(Gate::MeasX.is_measurement());
        assert!(!Gate::H.is_measurement());
        assert!(Gate::PrepZ.is_preparation());
        assert!(Gate::PrepX.is_preparation());
        assert!(!Gate::MeasZ.is_preparation());
    }
}
