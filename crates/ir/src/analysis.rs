//! Logical-level resource and parallelism estimation.
//!
//! This module implements the frontend analyses of the paper's toolflow
//! (Figure 4, "Logical-Level Analysis"): the logical operation count that
//! fixes the target logical error rate, and the parallelism estimate that
//! guides the backend network-optimization policy and QEC choice.

use std::collections::BTreeMap;
use std::fmt;

use crate::circuit::Circuit;
use crate::dag::DependencyDag;
use crate::gate::Gate;

/// Summary statistics of a logical circuit.
///
/// Produced by [`analyze`]; this is the data Table 2 of the paper reports
/// per application, plus the logical-op total used to derive the target
/// logical error rate `pL = 1/(2*KQ)` (paper Section 2.2).
///
/// # Examples
///
/// ```
/// use scq_ir::{analysis, Circuit};
///
/// let mut b = Circuit::builder("demo", 2);
/// b.h(0).h(1).cnot(0, 1).t(1);
/// let stats = analysis::analyze(&b.finish());
///
/// assert_eq!(stats.total_ops, 4);
/// assert_eq!(stats.t_count, 1);
/// assert_eq!(stats.depth, 3);
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct CircuitStats {
    /// Circuit name.
    pub name: String,
    /// Number of logical qubits.
    pub num_qubits: u32,
    /// Total logical operation count ("KQ", the size of computation).
    pub total_ops: usize,
    /// Instructions per gate kind.
    pub gate_histogram: BTreeMap<Gate, usize>,
    /// Number of magic-state-consuming (T/Tdg) ops.
    pub t_count: usize,
    /// Number of two-qubit (communication-inducing) ops.
    pub two_qubit_ops: usize,
    /// Critical-path length in ops.
    pub depth: usize,
    /// Ideal parallelism factor: `total_ops / depth` (paper Table 2).
    pub parallelism_factor: f64,
    /// Largest number of ops sharing one ASAP level (peak ideal width).
    pub max_width: usize,
}

impl CircuitStats {
    /// Target logical error rate per operation for a 50% overall success
    /// probability: `pL = 0.5 / total_ops` (paper Section 2.2).
    ///
    /// Returns 0.5 for an empty circuit (a single trivial "operation").
    pub fn target_logical_error_rate(&self) -> f64 {
        0.5 / (self.total_ops.max(1) as f64)
    }

    /// The "size of computation" axis used throughout the paper's
    /// evaluation: `1 / pL`.
    pub fn computation_size(&self) -> f64 {
        1.0 / self.target_logical_error_rate()
    }
}

impl fmt::Display for CircuitStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: {} qubits, {} ops (T: {}, 2q: {}), depth {}, parallelism {:.1}",
            self.name,
            self.num_qubits,
            self.total_ops,
            self.t_count,
            self.two_qubit_ops,
            self.depth,
            self.parallelism_factor
        )
    }
}

/// Analyzes a circuit, computing the statistics the backend consumes.
///
/// Builds a fresh [`DependencyDag`]; prefer [`analyze_with_dag`] when the
/// caller already has one.
pub fn analyze(circuit: &Circuit) -> CircuitStats {
    let dag = DependencyDag::from_circuit(circuit);
    analyze_with_dag(circuit, &dag)
}

/// Like [`analyze`] but reuses a precomputed DAG.
///
/// # Panics
///
/// Panics if `dag` was not built from `circuit`.
pub fn analyze_with_dag(circuit: &Circuit, dag: &DependencyDag) -> CircuitStats {
    assert_eq!(circuit.len(), dag.len(), "dag does not match circuit");
    let mut gate_histogram = BTreeMap::new();
    for inst in circuit {
        *gate_histogram.entry(inst.gate()).or_insert(0) += 1;
    }
    let widths = dag.level_widths();
    CircuitStats {
        name: circuit.name().to_owned(),
        num_qubits: circuit.num_qubits(),
        total_ops: circuit.len(),
        gate_histogram,
        t_count: circuit.t_count(),
        two_qubit_ops: circuit.two_qubit_count(),
        depth: dag.depth(),
        parallelism_factor: dag.parallelism_factor(),
        max_width: widths.iter().copied().max().unwrap_or(0),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Circuit {
        let mut b = Circuit::builder("sample", 3);
        b.h(0).h(1).h(2);
        b.cnot(0, 1).cnot(1, 2);
        b.t(0).t(1);
        b.meas_z(0);
        b.finish()
    }

    #[test]
    fn counts_match_circuit() {
        let s = analyze(&sample());
        assert_eq!(s.total_ops, 8);
        assert_eq!(s.t_count, 2);
        assert_eq!(s.two_qubit_ops, 2);
        assert_eq!(s.num_qubits, 3);
        assert_eq!(s.gate_histogram[&Gate::H], 3);
        assert_eq!(s.gate_histogram[&Gate::Cnot], 2);
    }

    #[test]
    fn depth_and_parallelism() {
        let s = analyze(&sample());
        // h's at level 0; cnot(0,1) level 1; t0 and cnot(1,2) level 2;
        // t1/meas at level 3... depth from DAG:
        let dag = DependencyDag::from_circuit(&sample());
        assert_eq!(s.depth, dag.depth());
        assert!((s.parallelism_factor - dag.parallelism_factor()).abs() < 1e-12);
        assert!(s.max_width >= 2);
    }

    #[test]
    fn target_logical_error_rate_scales_inversely() {
        let s = analyze(&sample());
        assert!((s.target_logical_error_rate() - 0.5 / 8.0).abs() < 1e-15);
        assert!((s.computation_size() - 16.0).abs() < 1e-9);
    }

    #[test]
    fn empty_circuit_has_safe_defaults() {
        let s = analyze(&Circuit::builder("empty", 0).finish());
        assert_eq!(s.total_ops, 0);
        assert_eq!(s.depth, 0);
        assert_eq!(s.max_width, 0);
        assert_eq!(s.target_logical_error_rate(), 0.5);
    }

    #[test]
    fn display_contains_key_fields() {
        let text = analyze(&sample()).to_string();
        assert!(text.contains("sample"));
        assert!(text.contains("8 ops"));
    }

    #[test]
    #[should_panic(expected = "dag does not match")]
    fn analyze_with_mismatched_dag_panics() {
        let c1 = sample();
        let c2 = Circuit::builder("other", 1).finish();
        let dag = DependencyDag::from_circuit(&c2);
        let _ = analyze_with_dag(&c1, &dag);
    }
}
