//! Logical quantum intermediate representation for the surface-code
//! communication toolflow.
//!
//! This crate is the reproduction of the QASM-level logical ISA the paper's
//! frontend (ScaffCC) lowers to. It provides:
//!
//! - [`Gate`]: the Clifford+T logical gate set,
//! - [`Circuit`] / [`CircuitBuilder`]: a validated sequence of logical
//!   instructions over [`Qubit`]s,
//! - [`DependencyDag`]: the data-dependency graph used for scheduling,
//!   critical-path and criticality analysis,
//! - [`analysis`]: logical-level resource and parallelism estimation
//!   (the "Logical-Level Analysis" stage of the paper's Figure 4),
//! - [`optimize`]: peephole cancellation/fusion (frontend op reduction),
//! - [`sim`]: a reference statevector simulator used to verify circuit
//!   transformations on small unitary circuits,
//! - [`InteractionGraph`]: the weighted qubit-interaction graph consumed by
//!   the layout optimizer (paper Section 6.2).
//!
//! # Examples
//!
//! ```
//! use scq_ir::{Circuit, Gate};
//!
//! let mut b = Circuit::builder("bell", 2);
//! b.h(0).cnot(0, 1).meas_z(0).meas_z(1);
//! let circuit = b.finish();
//!
//! assert_eq!(circuit.len(), 4);
//! let dag = scq_ir::DependencyDag::from_circuit(&circuit);
//! assert_eq!(dag.depth(), 3); // H -> CNOT -> measurements
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analysis;
mod circuit;
mod dag;
mod error;
mod gate;
mod interaction;
pub mod optimize;
mod qasm;
pub mod sim;

pub use circuit::{Circuit, CircuitBuilder, Instruction};
pub use dag::DependencyDag;
pub use error::{CliError, IrError, ParseGateError, QasmParseError};
pub use gate::Gate;
pub use interaction::InteractionGraph;
pub use qasm::{circuit_from_qasm, circuit_to_qasm};

/// A logical qubit identifier within a [`Circuit`].
///
/// `Qubit` is a plain index newtype: qubit `k` of an `n`-qubit circuit has
/// `index() == k < n`. It carries no state; the IR is purely structural.
///
/// # Examples
///
/// ```
/// use scq_ir::Qubit;
/// let q = Qubit::new(3);
/// assert_eq!(q.index(), 3);
/// assert_eq!(q.to_string(), "q3");
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Qubit(u32);

impl Qubit {
    /// Creates a qubit identifier from a raw index.
    pub fn new(index: u32) -> Self {
        Qubit(index)
    }

    /// Returns the raw index of this qubit.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Returns the raw index as `u32`.
    pub fn raw(self) -> u32 {
        self.0
    }
}

impl From<u32> for Qubit {
    fn from(index: u32) -> Self {
        Qubit(index)
    }
}

impl std::fmt::Display for Qubit {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "q{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn qubit_roundtrip() {
        let q = Qubit::new(7);
        assert_eq!(q.index(), 7);
        assert_eq!(q.raw(), 7);
        assert_eq!(Qubit::from(7u32), q);
    }

    #[test]
    fn qubit_display() {
        assert_eq!(Qubit::new(0).to_string(), "q0");
        assert_eq!(Qubit::new(41).to_string(), "q41");
    }

    #[test]
    fn qubit_ordering() {
        assert!(Qubit::new(1) < Qubit::new(2));
        let mut v = vec![Qubit::new(3), Qubit::new(1), Qubit::new(2)];
        v.sort();
        assert_eq!(v, vec![Qubit::new(1), Qubit::new(2), Qubit::new(3)]);
    }
}
