//! Plain-text QASM-style serialization of circuits.
//!
//! The format is a line-oriented assembly matching the paper's
//! "logical assembly" interchange (Figure 4): a header naming the circuit
//! and its width, then one instruction per line, e.g.
//!
//! ```text
//! # circuit bell
//! qubits 2
//! h q0
//! cnot q0, q1
//! measz q0
//! measz q1
//! ```

use crate::circuit::Circuit;
use crate::error::QasmParseError;
use crate::gate::Gate;

/// Serializes a circuit to the textual QASM dump.
///
/// The output round-trips through [`circuit_from_qasm`].
///
/// # Examples
///
/// ```
/// use scq_ir::{circuit_from_qasm, circuit_to_qasm, Circuit};
///
/// let mut b = Circuit::builder("bell", 2);
/// b.h(0).cnot(0, 1);
/// let c = b.finish();
/// let text = circuit_to_qasm(&c);
/// let back = circuit_from_qasm(&text).unwrap();
/// assert_eq!(back, c);
/// ```
pub fn circuit_to_qasm(circuit: &Circuit) -> String {
    let mut out = String::new();
    out.push_str(&format!("# circuit {}\n", circuit.name()));
    out.push_str(&format!("qubits {}\n", circuit.num_qubits()));
    for inst in circuit {
        let qs = inst.qubits();
        match qs.len() {
            1 => out.push_str(&format!("{} q{}\n", inst.gate(), qs[0].raw())),
            2 => out.push_str(&format!(
                "{} q{}, q{}\n",
                inst.gate(),
                qs[0].raw(),
                qs[1].raw()
            )),
            _ => unreachable!("gates have arity 1 or 2"),
        }
    }
    out
}

/// Parses a QASM dump produced by [`circuit_to_qasm`].
///
/// # Errors
///
/// Returns [`QasmParseError`] with a line number when the header is
/// missing or malformed, a gate mnemonic is unknown, an operand is not of
/// the form `qN`, or an instruction violates circuit invariants (operand
/// out of range, duplicate operands, wrong arity).
pub fn circuit_from_qasm(text: &str) -> Result<Circuit, QasmParseError> {
    let mut name = String::from("unnamed");
    let mut builder = None;
    for (idx, raw_line) in text.lines().enumerate() {
        let lineno = idx + 1;
        let line = raw_line.trim();
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix('#') {
            if let Some(n) = rest.trim().strip_prefix("circuit ") {
                name = n.trim().to_owned();
            }
            continue;
        }
        if let Some(rest) = line.strip_prefix("qubits ") {
            let n: u32 = rest
                .trim()
                .parse()
                .map_err(|_| QasmParseError::new(lineno, "invalid qubit count"))?;
            builder = Some(Circuit::builder(name.clone(), n));
            continue;
        }
        let b = builder
            .as_mut()
            .ok_or_else(|| QasmParseError::new(lineno, "instruction before `qubits` header"))?;
        let (mnemonic, operands) = match line.split_once(' ') {
            Some((m, o)) => (m, o),
            None => return Err(QasmParseError::new(lineno, "missing operands")),
        };
        let gate: Gate = mnemonic
            .parse()
            .map_err(|e| QasmParseError::new(lineno, format!("{e}")))?;
        let mut qubits = Vec::with_capacity(2);
        for op in operands.split(',') {
            let op = op.trim();
            let idx_str = op
                .strip_prefix('q')
                .ok_or_else(|| QasmParseError::new(lineno, format!("bad operand `{op}`")))?;
            let q: u32 = idx_str
                .parse()
                .map_err(|_| QasmParseError::new(lineno, format!("bad operand `{op}`")))?;
            qubits.push(q);
        }
        b.try_push(gate, &qubits)
            .map_err(|e| QasmParseError::new(lineno, format!("{e}")))?;
    }
    match builder {
        Some(b) => Ok(b.finish()),
        None => Err(QasmParseError::new(
            text.lines().count().max(1),
            "missing `qubits` header",
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Circuit;

    fn sample() -> Circuit {
        let mut b = Circuit::builder("sample", 3);
        b.prep_z(0).h(0).cnot(0, 1).t(2).swap(1, 2).meas_x(0);
        b.finish()
    }

    #[test]
    fn roundtrip_preserves_circuit() {
        let c = sample();
        let text = circuit_to_qasm(&c);
        let back = circuit_from_qasm(&text).unwrap();
        assert_eq!(back, c);
    }

    #[test]
    fn dump_format_is_stable() {
        let text = circuit_to_qasm(&sample());
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines[0], "# circuit sample");
        assert_eq!(lines[1], "qubits 3");
        assert_eq!(lines[2], "prepz q0");
        assert_eq!(lines[4], "cnot q0, q1");
    }

    #[test]
    fn parse_tolerates_blank_lines_and_comments() {
        let text = "# circuit c\n\n# a comment\nqubits 1\n\nh q0\n";
        let c = circuit_from_qasm(text).unwrap();
        assert_eq!(c.name(), "c");
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn parse_rejects_unknown_gate() {
        let err = circuit_from_qasm("qubits 1\nfredkin q0\n").unwrap_err();
        assert_eq!(err.line(), 2);
        assert!(err.message().contains("fredkin"));
    }

    #[test]
    fn parse_rejects_missing_header() {
        let err = circuit_from_qasm("h q0\n").unwrap_err();
        assert!(err.message().contains("before"));
    }

    #[test]
    fn parse_rejects_bad_operand() {
        let err = circuit_from_qasm("qubits 2\ncnot q0, r1\n").unwrap_err();
        assert!(err.message().contains("r1"));
    }

    #[test]
    fn parse_rejects_out_of_range_operand() {
        let err = circuit_from_qasm("qubits 1\nh q5\n").unwrap_err();
        assert!(err.message().contains("out of range"));
    }

    #[test]
    fn parse_empty_input_fails() {
        assert!(circuit_from_qasm("").is_err());
    }
}
