//! Peephole circuit optimization.
//!
//! The paper's frontend reduces logical operation counts before error
//! correction is applied, because "a reduced operation count yields
//! multiplicative benefits: fewer operations must be protected against
//! errors, and those that do ... can afford a weaker form of correction"
//! (Section 5.4). This pass implements the standard wire-local rewrites:
//! adjacent self-inverse pairs cancel, and adjacent T/S rotations fuse.

use crate::circuit::{Circuit, Instruction};
use crate::gate::Gate;

/// What the optimizer did to a circuit.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct OptimizeStats {
    /// Instructions removed as adjacent inverse pairs (counts both).
    pub cancelled: usize,
    /// Instruction pairs fused into one (e.g. `T;T -> S`).
    pub fused: usize,
    /// Rewrite passes run until the fixpoint.
    pub passes: usize,
}

impl OptimizeStats {
    /// Net instructions eliminated.
    pub fn removed(&self) -> usize {
        self.cancelled + self.fused
    }
}

/// Returns the gate two adjacent `g` instructions fuse into, if any.
fn fuse_rule(g: Gate) -> Option<Gate> {
    match g {
        Gate::T => Some(Gate::S),
        Gate::Tdg => Some(Gate::Sdg),
        Gate::S | Gate::Sdg => Some(Gate::Z),
        _ => None,
    }
}

/// Returns `true` if `a` followed by `b` on identical wires is identity.
fn cancels(a: &Instruction, b: &Instruction) -> bool {
    let (ga, gb) = (a.gate(), b.gate());
    let inverse_pair = matches!(
        (ga, gb),
        (Gate::H, Gate::H)
            | (Gate::X, Gate::X)
            | (Gate::Y, Gate::Y)
            | (Gate::Z, Gate::Z)
            | (Gate::S, Gate::Sdg)
            | (Gate::Sdg, Gate::S)
            | (Gate::T, Gate::Tdg)
            | (Gate::Tdg, Gate::T)
            | (Gate::Cnot, Gate::Cnot)
            | (Gate::Cz, Gate::Cz)
            | (Gate::Swap, Gate::Swap)
    );
    if !inverse_pair {
        return false;
    }
    match ga {
        // Symmetric two-qubit gates cancel regardless of operand order.
        Gate::Cz | Gate::Swap => {
            let mut qa: Vec<_> = a.qubits().to_vec();
            let mut qb: Vec<_> = b.qubits().to_vec();
            qa.sort();
            qb.sort();
            qa == qb
        }
        _ => a.qubits() == b.qubits(),
    }
}

/// One rewrite pass; returns the new circuit and whether it changed.
fn pass(circuit: &Circuit, stats: &mut OptimizeStats) -> (Circuit, bool) {
    let n = circuit.num_qubits() as usize;
    // Output buffer; `None` marks instructions removed by cancellation.
    let mut out: Vec<Option<Instruction>> = Vec::with_capacity(circuit.len());
    // Per-wire index of the last live output instruction.
    let mut last_on_wire: Vec<Option<usize>> = vec![None; n];
    let mut changed = false;

    for inst in circuit {
        let qs = inst.qubits();
        // The previous instruction is adjacent only if it is the last
        // op on *every* wire this instruction touches.
        let prev_idx = last_on_wire[qs[0].index()];
        let adjacent = prev_idx
            .filter(|&i| {
                qs.iter().all(|q| last_on_wire[q.index()] == Some(i))
                    && out[i]
                        .as_ref()
                        .map(|p| p.qubits().iter().all(|pq| qs.contains(pq)))
                        .unwrap_or(false)
            })
            .and_then(|i| out[i].as_ref().map(|p| (i, *p)));

        if let Some((i, prev)) = adjacent {
            if cancels(&prev, inst) {
                out[i] = None;
                for q in qs {
                    last_on_wire[q.index()] = rewind(&out, q.index());
                }
                stats.cancelled += 2;
                changed = true;
                continue;
            }
            if prev.gate() == inst.gate() && prev.qubits() == qs {
                if let Some(fused) = fuse_rule(inst.gate()) {
                    out[i] = Some(Instruction::new(fused, [qs[0], qs[0]]));
                    stats.fused += 1;
                    changed = true;
                    continue;
                }
            }
        }
        let idx = out.len();
        out.push(Some(*inst));
        for q in qs {
            last_on_wire[q.index()] = Some(idx);
        }
    }

    let mut b = Circuit::builder(circuit.name(), circuit.num_qubits());
    for inst in out.into_iter().flatten() {
        let raw: Vec<u32> = inst.qubits().iter().map(|q| q.raw()).collect();
        b.try_push(inst.gate(), &raw)
            .expect("rewritten instructions stay valid");
    }
    (b.finish(), changed)
}

/// Finds the latest live instruction on `wire` before the removed one.
fn rewind(out: &[Option<Instruction>], wire: usize) -> Option<usize> {
    out.iter()
        .enumerate()
        .rev()
        .find(|(_, slot)| {
            slot.as_ref()
                .map(|i| i.qubits().iter().any(|q| q.index() == wire))
                .unwrap_or(false)
        })
        .map(|(i, _)| i)
}

/// Optimizes a circuit to a rewrite fixpoint.
///
/// Applies wire-local cancellation (adjacent self-inverse pairs) and
/// fusion (`T;T -> S`, `S;S -> Z`, and their daggers) until no rule
/// fires. Never increases the instruction count, depth, or T count.
///
/// # Examples
///
/// ```
/// use scq_ir::{optimize, Circuit};
///
/// let mut b = Circuit::builder("redundant", 2);
/// b.h(0).h(0).t(1).t(1).cnot(0, 1).cnot(0, 1);
/// let (optimized, stats) = optimize::peephole(&b.finish());
/// assert_eq!(optimized.len(), 1); // only the fused S on q1 survives
/// assert_eq!(stats.removed(), 5);
/// ```
pub fn peephole(circuit: &Circuit) -> (Circuit, OptimizeStats) {
    let mut stats = OptimizeStats::default();
    let mut current = circuit.clone();
    loop {
        stats.passes += 1;
        let (next, changed) = pass(&current, &mut stats);
        current = next;
        if !changed || stats.passes > 64 {
            return (current, stats);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inverse_pairs_cancel() {
        let mut b = Circuit::builder("c", 2);
        b.h(0).h(0).x(1).x(1).s(0).sdg(0);
        let (opt, stats) = peephole(&b.finish());
        assert!(opt.is_empty(), "survivors: {:?}", opt.instructions());
        assert_eq!(stats.cancelled, 6);
    }

    #[test]
    fn cnot_pairs_cancel_only_with_same_orientation() {
        let mut b = Circuit::builder("c", 2);
        b.cnot(0, 1).cnot(0, 1); // cancels
        b.cnot(0, 1).cnot(1, 0); // does not
        let (opt, _) = peephole(&b.finish());
        assert_eq!(opt.len(), 2);
    }

    #[test]
    fn symmetric_gates_cancel_in_either_order() {
        let mut b = Circuit::builder("c", 2);
        b.cz(0, 1).cz(1, 0).swap(0, 1).swap(1, 0);
        let (opt, _) = peephole(&b.finish());
        assert!(opt.is_empty());
    }

    #[test]
    fn t_chains_fuse_to_fixpoint() {
        // T T T T = S S = Z; Z Z = I.
        let mut b = Circuit::builder("c", 1);
        for _ in 0..8 {
            b.t(0);
        }
        let (opt, stats) = peephole(&b.finish());
        assert!(opt.is_empty(), "survivors: {:?}", opt.instructions());
        assert!(stats.passes >= 2, "fusion cascade needs multiple passes");
    }

    #[test]
    fn intervening_gate_blocks_cancellation() {
        let mut b = Circuit::builder("c", 2);
        b.h(0).cnot(0, 1).h(0);
        let (opt, stats) = peephole(&b.finish());
        assert_eq!(opt.len(), 3);
        assert_eq!(stats.removed(), 0);
    }

    #[test]
    fn two_qubit_adjacency_requires_both_wires() {
        // cnot; h on target; cnot: the H blocks the pair.
        let mut b = Circuit::builder("c", 2);
        b.cnot(0, 1).h(1).cnot(0, 1);
        let (opt, _) = peephole(&b.finish());
        assert_eq!(opt.len(), 3);
    }

    #[test]
    fn measurements_are_barriers() {
        let mut b = Circuit::builder("c", 1);
        b.h(0).meas_z(0).h(0);
        let (opt, _) = peephole(&b.finish());
        assert_eq!(opt.len(), 3);
    }

    #[test]
    fn optimization_is_idempotent() {
        let mut b = Circuit::builder("c", 3);
        b.h(0).t(0).t(0).cnot(0, 1).cnot(0, 1).h(0).swap(1, 2);
        let (once, _) = peephole(&b.finish());
        let (twice, stats) = peephole(&once);
        assert_eq!(once, twice);
        assert_eq!(stats.removed(), 0);
    }

    #[test]
    fn cancellation_exposes_earlier_pairs() {
        // H [cnot cnot] H: removing the cnots lets the Hs cancel.
        let mut b = Circuit::builder("c", 2);
        b.h(0).cnot(0, 1).cnot(0, 1).h(0);
        let (opt, _) = peephole(&b.finish());
        assert!(opt.is_empty(), "survivors: {:?}", opt.instructions());
    }
}
