//! Reference statevector simulator for small unitary circuits.
//!
//! Used to *verify* circuit transformations: the peephole optimizer's
//! rewrites must preserve the statevector exactly (our rules are
//! phase-exact, not merely up to global phase). This is test tooling for
//! a handful of qubits, not a performance simulator — memory is `2^n`
//! amplitudes.

use std::fmt;

use crate::circuit::Circuit;
use crate::gate::Gate;

/// A complex amplitude.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct Complex {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl Complex {
    /// The complex number `re + im*i`.
    pub const fn new(re: f64, im: f64) -> Self {
        Complex { re, im }
    }

    /// Zero.
    pub const ZERO: Complex = Complex::new(0.0, 0.0);
    /// One.
    pub const ONE: Complex = Complex::new(1.0, 0.0);
    /// The imaginary unit.
    pub const I: Complex = Complex::new(0.0, 1.0);

    /// Squared magnitude.
    pub fn norm_sq(self) -> f64 {
        self.re * self.re + self.im * self.im
    }
}

impl std::ops::Mul for Complex {
    type Output = Complex;

    fn mul(self, other: Complex) -> Complex {
        Complex::new(
            self.re * other.re - self.im * other.im,
            self.re * other.im + self.im * other.re,
        )
    }
}

impl std::ops::Add for Complex {
    type Output = Complex;

    fn add(self, other: Complex) -> Complex {
        Complex::new(self.re + other.re, self.im + other.im)
    }
}

impl fmt::Display for Complex {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:+.4}{:+.4}i", self.re, self.im)
    }
}

/// An `n`-qubit statevector.
#[derive(Clone, Debug, PartialEq)]
pub struct StateVector {
    num_qubits: u32,
    amps: Vec<Complex>,
}

/// The circuit contained a non-unitary instruction (preparation or
/// measurement), which the statevector simulator does not model.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct NonUnitary {
    /// Index of the offending instruction.
    pub index: usize,
}

impl fmt::Display for NonUnitary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "instruction {} is not unitary", self.index)
    }
}

impl std::error::Error for NonUnitary {}

impl StateVector {
    /// The all-zeros computational basis state `|0...0>`.
    ///
    /// # Panics
    ///
    /// Panics if `num_qubits > 20` (the simulator is for small
    /// verification circuits).
    pub fn zero(num_qubits: u32) -> Self {
        assert!(num_qubits <= 20, "statevector sim capped at 20 qubits");
        let mut amps = vec![Complex::ZERO; 1 << num_qubits];
        amps[0] = Complex::ONE;
        StateVector { num_qubits, amps }
    }

    /// Number of qubits.
    pub fn num_qubits(&self) -> u32 {
        self.num_qubits
    }

    /// Amplitude of basis state `index`.
    pub fn amplitude(&self, index: usize) -> Complex {
        self.amps[index]
    }

    /// Probability of measuring basis state `index`.
    pub fn probability(&self, index: usize) -> f64 {
        self.amps[index].norm_sq()
    }

    /// Largest amplitude difference to another state (infinity norm).
    pub fn distance(&self, other: &StateVector) -> f64 {
        assert_eq!(self.num_qubits, other.num_qubits, "qubit count mismatch");
        self.amps
            .iter()
            .zip(&other.amps)
            .map(|(a, b)| {
                let d = Complex::new(a.re - b.re, a.im - b.im);
                d.norm_sq().sqrt()
            })
            .fold(0.0, f64::max)
    }

    fn apply_1q(&mut self, q: u32, m: [[Complex; 2]; 2]) {
        let bit = 1usize << q;
        for i in 0..self.amps.len() {
            if i & bit == 0 {
                let a = self.amps[i];
                let b = self.amps[i | bit];
                self.amps[i] = m[0][0] * a + m[0][1] * b;
                self.amps[i | bit] = m[1][0] * a + m[1][1] * b;
            }
        }
    }

    fn apply_phase_if(&mut self, predicate: impl Fn(usize) -> bool, phase: Complex) {
        for (i, amp) in self.amps.iter_mut().enumerate() {
            if predicate(i) {
                *amp = *amp * phase;
            }
        }
    }

    /// Applies one unitary gate.
    fn apply(&mut self, gate: Gate, qs: &[u32]) -> Result<(), ()> {
        let inv_sqrt2 = Complex::new(std::f64::consts::FRAC_1_SQRT_2, 0.0);
        let neg = Complex::new(-1.0, 0.0);
        match gate {
            Gate::X => {
                let bit = 1usize << qs[0];
                for i in 0..self.amps.len() {
                    if i & bit == 0 {
                        self.amps.swap(i, i | bit);
                    }
                }
            }
            Gate::Y => {
                let bit = 1usize << qs[0];
                for i in 0..self.amps.len() {
                    if i & bit == 0 {
                        let a = self.amps[i];
                        let b = self.amps[i | bit];
                        self.amps[i] = Complex::new(b.im, -b.re); // -i*b
                        self.amps[i | bit] = Complex::new(-a.im, a.re); // i*a
                    }
                }
            }
            Gate::Z => {
                let bit = 1usize << qs[0];
                self.apply_phase_if(|i| i & bit != 0, neg);
            }
            Gate::H => {
                let m = [[inv_sqrt2, inv_sqrt2], [inv_sqrt2, inv_sqrt2 * neg]];
                self.apply_1q(qs[0], m);
            }
            Gate::S => {
                let bit = 1usize << qs[0];
                self.apply_phase_if(|i| i & bit != 0, Complex::I);
            }
            Gate::Sdg => {
                let bit = 1usize << qs[0];
                self.apply_phase_if(|i| i & bit != 0, Complex::new(0.0, -1.0));
            }
            Gate::T => {
                let bit = 1usize << qs[0];
                let p = Complex::new(
                    std::f64::consts::FRAC_1_SQRT_2,
                    std::f64::consts::FRAC_1_SQRT_2,
                );
                self.apply_phase_if(|i| i & bit != 0, p);
            }
            Gate::Tdg => {
                let bit = 1usize << qs[0];
                let p = Complex::new(
                    std::f64::consts::FRAC_1_SQRT_2,
                    -std::f64::consts::FRAC_1_SQRT_2,
                );
                self.apply_phase_if(|i| i & bit != 0, p);
            }
            Gate::Cnot => {
                let c = 1usize << qs[0];
                let t = 1usize << qs[1];
                for i in 0..self.amps.len() {
                    if i & c != 0 && i & t == 0 {
                        self.amps.swap(i, i | t);
                    }
                }
            }
            Gate::Cz => {
                let c = 1usize << qs[0];
                let t = 1usize << qs[1];
                self.apply_phase_if(|i| i & c != 0 && i & t != 0, neg);
            }
            Gate::Swap => {
                let a = 1usize << qs[0];
                let b = 1usize << qs[1];
                for i in 0..self.amps.len() {
                    if i & a != 0 && i & b == 0 {
                        self.amps.swap(i, (i & !a) | b);
                    }
                }
            }
            Gate::PrepZ | Gate::PrepX | Gate::MeasZ | Gate::MeasX => return Err(()),
        }
        Ok(())
    }
}

/// Simulates a unitary circuit from `|0...0>`.
///
/// # Errors
///
/// Returns [`NonUnitary`] if the circuit contains preparations or
/// measurements.
///
/// # Panics
///
/// Panics if the circuit has more than 20 qubits.
///
/// # Examples
///
/// ```
/// use scq_ir::{sim, Circuit};
///
/// let mut b = Circuit::builder("bell", 2);
/// b.h(0).cnot(0, 1);
/// let state = sim::simulate(&b.finish()).unwrap();
/// assert!((state.probability(0b00) - 0.5).abs() < 1e-12);
/// assert!((state.probability(0b11) - 0.5).abs() < 1e-12);
/// ```
pub fn simulate(circuit: &Circuit) -> Result<StateVector, NonUnitary> {
    let mut state = StateVector::zero(circuit.num_qubits());
    for (index, inst) in circuit.iter().enumerate() {
        let qs: Vec<u32> = inst.qubits().iter().map(|q| q.raw()).collect();
        state
            .apply(inst.gate(), &qs)
            .map_err(|()| NonUnitary { index })?;
    }
    Ok(state)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: f64, b: f64) {
        assert!((a - b).abs() < 1e-12, "{a} != {b}");
    }

    #[test]
    fn bell_state() {
        let mut b = Circuit::builder("bell", 2);
        b.h(0).cnot(0, 1);
        let s = simulate(&b.finish()).unwrap();
        assert_close(s.probability(0b00), 0.5);
        assert_close(s.probability(0b11), 0.5);
        assert_close(s.probability(0b01), 0.0);
    }

    #[test]
    fn x_flips() {
        let mut b = Circuit::builder("x", 1);
        b.x(0);
        let s = simulate(&b.finish()).unwrap();
        assert_close(s.probability(1), 1.0);
    }

    #[test]
    fn t_twice_equals_s() {
        let mut tt = Circuit::builder("tt", 1);
        tt.h(0).t(0).t(0);
        let mut ss = Circuit::builder("s", 1);
        ss.h(0).s(0);
        let a = simulate(&tt.finish()).unwrap();
        let b = simulate(&ss.finish()).unwrap();
        assert!(a.distance(&b) < 1e-12);
    }

    #[test]
    fn swap_exchanges_basis_states() {
        let mut b = Circuit::builder("swap", 2);
        b.x(0).swap(0, 1);
        let s = simulate(&b.finish()).unwrap();
        assert_close(s.probability(0b10), 1.0);
    }

    #[test]
    fn cz_is_symmetric_and_diagonal() {
        let mut b = Circuit::builder("cz", 2);
        b.x(0).x(1).cz(1, 0);
        let s = simulate(&b.finish()).unwrap();
        let amp = s.amplitude(0b11);
        assert_close(amp.re, -1.0);
        assert_close(amp.im, 0.0);
    }

    #[test]
    fn y_gate_phases() {
        let mut b = Circuit::builder("y", 1);
        b.y(0);
        let s = simulate(&b.finish()).unwrap();
        let amp = s.amplitude(1);
        assert_close(amp.re, 0.0);
        assert_close(amp.im, 1.0); // Y|0> = i|1>
    }

    #[test]
    fn hh_is_identity() {
        let mut b = Circuit::builder("hh", 1);
        b.h(0).h(0);
        let s = simulate(&b.finish()).unwrap();
        assert_close(s.probability(0), 1.0);
        assert_close(s.amplitude(0).re, 1.0);
    }

    #[test]
    fn measurement_is_rejected() {
        let mut b = Circuit::builder("m", 1);
        b.h(0).meas_z(0);
        let err = simulate(&b.finish()).unwrap_err();
        assert_eq!(err.index, 1);
        assert!(err.to_string().contains("not unitary"));
    }

    #[test]
    fn state_is_normalized_after_random_gates() {
        let mut b = Circuit::builder("norm", 3);
        b.h(0).t(1).cnot(0, 2).s(2).cz(1, 2).swap(0, 1).tdg(0).y(2);
        let s = simulate(&b.finish()).unwrap();
        let total: f64 = (0..8).map(|i| s.probability(i)).sum();
        assert_close(total, 1.0);
    }
}
