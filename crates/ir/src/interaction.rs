//! Weighted qubit-interaction graphs.

use std::collections::BTreeMap;

use crate::circuit::Circuit;

/// The weighted interaction graph of a circuit: vertices are logical
/// qubits, and the weight of edge `{a, b}` counts the two-qubit
/// instructions operating on `a` and `b`.
///
/// This is the graph the paper partitions with METIS to place
/// frequently-interacting qubits close together (Section 6.2: "map logical
/// tiles which interact frequently close to each other").
///
/// # Examples
///
/// ```
/// use scq_ir::{Circuit, InteractionGraph};
///
/// let mut b = Circuit::builder("pair", 3);
/// b.cnot(0, 1).cnot(0, 1).cnot(1, 2);
/// let g = InteractionGraph::from_circuit(&b.finish());
///
/// assert_eq!(g.weight(0, 1), 2);
/// assert_eq!(g.weight(1, 2), 1);
/// assert_eq!(g.weight(0, 2), 0);
/// assert_eq!(g.total_weight(), 3);
/// ```
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct InteractionGraph {
    num_qubits: u32,
    // Keyed on (min, max); BTreeMap gives deterministic iteration order,
    // which keeps layout results reproducible run to run.
    edges: BTreeMap<(u32, u32), u64>,
}

impl InteractionGraph {
    /// Builds the interaction graph of `circuit`.
    pub fn from_circuit(circuit: &Circuit) -> Self {
        let mut edges = BTreeMap::new();
        for inst in circuit {
            let qs = inst.qubits();
            if qs.len() == 2 {
                let (a, b) = (qs[0].raw(), qs[1].raw());
                let key = (a.min(b), a.max(b));
                *edges.entry(key).or_insert(0) += 1;
            }
        }
        InteractionGraph {
            num_qubits: circuit.num_qubits(),
            edges,
        }
    }

    /// Number of vertices (logical qubits).
    pub fn num_qubits(&self) -> u32 {
        self.num_qubits
    }

    /// Number of distinct interacting pairs.
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// Interaction count between `a` and `b` (0 if they never interact).
    pub fn weight(&self, a: u32, b: u32) -> u64 {
        if a == b {
            return 0;
        }
        self.edges.get(&(a.min(b), a.max(b))).copied().unwrap_or(0)
    }

    /// Sum of all edge weights (= the circuit's two-qubit op count).
    pub fn total_weight(&self) -> u64 {
        self.edges.values().sum()
    }

    /// Iterates over `(a, b, weight)` with `a < b`, in deterministic order.
    pub fn iter(&self) -> impl Iterator<Item = (u32, u32, u64)> + '_ {
        self.edges.iter().map(|(&(a, b), &w)| (a, b, w))
    }

    /// Total interaction weight incident to qubit `q`.
    pub fn degree(&self, q: u32) -> u64 {
        self.edges
            .iter()
            .filter(|(&(a, b), _)| a == q || b == q)
            .map(|(_, &w)| w)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Circuit;

    fn sample() -> InteractionGraph {
        let mut b = Circuit::builder("sample", 4);
        b.h(0); // single-qubit ops don't contribute
        b.cnot(0, 1).cnot(1, 0).cz(2, 3).swap(0, 3);
        InteractionGraph::from_circuit(&b.finish())
    }

    #[test]
    fn weights_are_undirected() {
        let g = sample();
        assert_eq!(g.weight(0, 1), 2); // cnot(0,1) + cnot(1,0)
        assert_eq!(g.weight(1, 0), 2);
    }

    #[test]
    fn single_qubit_gates_do_not_contribute() {
        let g = sample();
        assert_eq!(g.total_weight(), 4);
        assert_eq!(g.num_edges(), 3);
    }

    #[test]
    fn self_weight_is_zero() {
        let g = sample();
        assert_eq!(g.weight(2, 2), 0);
    }

    #[test]
    fn degree_sums_incident_weight() {
        let g = sample();
        assert_eq!(g.degree(0), 3); // 2 with q1, 1 with q3
        assert_eq!(g.degree(2), 1);
    }

    #[test]
    fn iter_is_deterministic_and_sorted() {
        let g = sample();
        let edges: Vec<_> = g.iter().collect();
        assert_eq!(edges, vec![(0, 1, 2), (0, 3, 1), (2, 3, 1)]);
    }

    #[test]
    fn empty_circuit_yields_empty_graph() {
        let g = InteractionGraph::from_circuit(&Circuit::builder("e", 5).finish());
        assert_eq!(g.num_qubits(), 5);
        assert_eq!(g.num_edges(), 0);
        assert_eq!(g.total_weight(), 0);
    }
}
