//! Circuits and the builder used to construct them.

use std::fmt;

use crate::error::IrError;
use crate::gate::Gate;
use crate::Qubit;

/// A single logical instruction: a gate applied to one or two qubits.
///
/// # Examples
///
/// ```
/// use scq_ir::{Circuit, Gate};
///
/// let mut b = Circuit::builder("demo", 2);
/// b.cnot(0, 1);
/// let c = b.finish();
/// let inst = &c.instructions()[0];
/// assert_eq!(inst.gate(), Gate::Cnot);
/// assert_eq!(inst.qubits().len(), 2);
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Instruction {
    gate: Gate,
    operands: [Qubit; 2],
}

impl Instruction {
    pub(crate) fn new(gate: Gate, operands: [Qubit; 2]) -> Self {
        Instruction { gate, operands }
    }

    /// The gate this instruction applies.
    pub fn gate(&self) -> Gate {
        self.gate
    }

    /// The qubit operands, in order. Length equals [`Gate::arity`].
    ///
    /// For [`Gate::Cnot`] the first element is the control and the second
    /// the target.
    pub fn qubits(&self) -> &[Qubit] {
        &self.operands[..self.gate.arity()]
    }

    /// Returns `true` if this instruction operates on `qubit`.
    pub fn touches(&self, qubit: Qubit) -> bool {
        self.qubits().contains(&qubit)
    }
}

impl fmt::Display for Instruction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.gate)?;
        for (i, q) in self.qubits().iter().enumerate() {
            if i == 0 {
                write!(f, " {q}")?;
            } else {
                write!(f, ", {q}")?;
            }
        }
        Ok(())
    }
}

/// An ordered sequence of logical instructions over a fixed set of qubits.
///
/// A `Circuit` is the unit of work the backend maps, schedules, and
/// estimates. Construct one with [`Circuit::builder`]; the builder validates
/// operand ranges so every `Circuit` in existence is well-formed.
///
/// # Examples
///
/// ```
/// use scq_ir::{Circuit, Gate};
///
/// let mut b = Circuit::builder("teleport-demo", 3);
/// b.h(1).cnot(1, 2).cnot(0, 1).h(0).meas_z(0).meas_z(1);
/// let c = b.finish();
/// assert_eq!(c.num_qubits(), 3);
/// assert_eq!(c.two_qubit_count(), 2);
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Circuit {
    name: String,
    num_qubits: u32,
    instructions: Vec<Instruction>,
}

impl Circuit {
    /// Starts building a circuit over `num_qubits` qubits.
    pub fn builder(name: impl Into<String>, num_qubits: u32) -> CircuitBuilder {
        CircuitBuilder {
            circuit: Circuit {
                name: name.into(),
                num_qubits,
                instructions: Vec::new(),
            },
        }
    }

    /// The circuit's human-readable name (e.g. `"ising-16"`).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of logical qubits the circuit operates on.
    pub fn num_qubits(&self) -> u32 {
        self.num_qubits
    }

    /// Number of instructions.
    pub fn len(&self) -> usize {
        self.instructions.len()
    }

    /// Returns `true` if the circuit contains no instructions.
    pub fn is_empty(&self) -> bool {
        self.instructions.is_empty()
    }

    /// The instruction sequence.
    pub fn instructions(&self) -> &[Instruction] {
        &self.instructions
    }

    /// Iterates over the instructions in program order.
    pub fn iter(&self) -> std::slice::Iter<'_, Instruction> {
        self.instructions.iter()
    }

    /// Counts instructions applying `gate`.
    pub fn count_gate(&self, gate: Gate) -> usize {
        self.instructions
            .iter()
            .filter(|i| i.gate() == gate)
            .count()
    }

    /// Number of `T`/`Tdg` instructions — each consumes a magic state.
    pub fn t_count(&self) -> usize {
        self.instructions
            .iter()
            .filter(|i| i.gate().needs_magic_state())
            .count()
    }

    /// Number of two-qubit instructions — the communication-inducing ops.
    pub fn two_qubit_count(&self) -> usize {
        self.instructions
            .iter()
            .filter(|i| i.gate().is_two_qubit())
            .count()
    }

    /// Concatenates another circuit onto this one.
    ///
    /// The other circuit's qubit `k` is mapped to this circuit's qubit
    /// `offset + k`; the width grows if needed. This is the primitive used
    /// by the module-inlining transformations in `scq-apps`.
    pub fn append(&mut self, other: &Circuit, offset: u32) {
        let needed = offset + other.num_qubits;
        if needed > self.num_qubits {
            self.num_qubits = needed;
        }
        for inst in &other.instructions {
            let mut ops = inst.operands;
            for q in ops.iter_mut().take(inst.gate().arity()) {
                *q = Qubit::new(q.raw() + offset);
            }
            self.instructions.push(Instruction::new(inst.gate(), ops));
        }
    }
}

impl fmt::Display for Circuit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "circuit `{}`: {} qubits, {} ops",
            self.name,
            self.num_qubits,
            self.len()
        )
    }
}

impl<'a> IntoIterator for &'a Circuit {
    type Item = &'a Instruction;
    type IntoIter = std::slice::Iter<'a, Instruction>;

    fn into_iter(self) -> Self::IntoIter {
        self.iter()
    }
}

/// Incrementally builds a validated [`Circuit`].
///
/// Convenience methods (`h`, `cnot`, ...) take raw `u32` indices and panic
/// on invalid operands; use [`CircuitBuilder::try_push`] for fallible
/// construction from untrusted input.
///
/// # Panics
///
/// The gate convenience methods panic if an operand is out of range or if a
/// two-qubit gate is given identical operands. Build-time validation keeps
/// all downstream consumers panic-free.
#[derive(Clone, Debug)]
pub struct CircuitBuilder {
    circuit: Circuit,
}

macro_rules! one_qubit_method {
    ($(#[$doc:meta])* $name:ident, $gate:expr) => {
        $(#[$doc])*
        pub fn $name(&mut self, q: u32) -> &mut Self {
            self.push1($gate, q)
        }
    };
}

macro_rules! two_qubit_method {
    ($(#[$doc:meta])* $name:ident, $gate:expr) => {
        $(#[$doc])*
        pub fn $name(&mut self, a: u32, b: u32) -> &mut Self {
            self.push2($gate, a, b)
        }
    };
}

impl CircuitBuilder {
    /// Appends a gate with explicit operands, validating arity and ranges.
    ///
    /// # Errors
    ///
    /// Returns [`IrError::WrongArity`] if `qubits.len() != gate.arity()`,
    /// [`IrError::QubitOutOfRange`] for an operand beyond the circuit
    /// width, and [`IrError::DuplicateOperand`] when a two-qubit gate is
    /// given the same qubit twice.
    pub fn try_push(&mut self, gate: Gate, qubits: &[u32]) -> Result<&mut Self, IrError> {
        if qubits.len() != gate.arity() {
            return Err(IrError::WrongArity {
                gate: gate.mnemonic(),
                expected: gate.arity(),
                actual: qubits.len(),
            });
        }
        for &q in qubits {
            if q >= self.circuit.num_qubits {
                return Err(IrError::QubitOutOfRange {
                    qubit: q,
                    num_qubits: self.circuit.num_qubits,
                });
            }
        }
        if gate.arity() == 2 && qubits[0] == qubits[1] {
            return Err(IrError::DuplicateOperand { qubit: qubits[0] });
        }
        let a = Qubit::new(qubits[0]);
        let b = Qubit::new(*qubits.get(1).unwrap_or(&qubits[0]));
        self.circuit
            .instructions
            .push(Instruction::new(gate, [a, b]));
        Ok(self)
    }

    fn push1(&mut self, gate: Gate, q: u32) -> &mut Self {
        self.try_push(gate, &[q])
            .unwrap_or_else(|e| panic!("invalid instruction: {e}"));
        self
    }

    fn push2(&mut self, gate: Gate, a: u32, b: u32) -> &mut Self {
        self.try_push(gate, &[a, b])
            .unwrap_or_else(|e| panic!("invalid instruction: {e}"));
        self
    }

    one_qubit_method!(
        /// Appends a `|0>` preparation.
        prep_z, Gate::PrepZ);
    one_qubit_method!(
        /// Appends a `|+>` preparation.
        prep_x, Gate::PrepX);
    one_qubit_method!(
        /// Appends a Z-basis measurement.
        meas_z, Gate::MeasZ);
    one_qubit_method!(
        /// Appends an X-basis measurement.
        meas_x, Gate::MeasX);
    one_qubit_method!(
        /// Appends a Pauli X.
        x, Gate::X);
    one_qubit_method!(
        /// Appends a Pauli Y.
        y, Gate::Y);
    one_qubit_method!(
        /// Appends a Pauli Z.
        z, Gate::Z);
    one_qubit_method!(
        /// Appends a Hadamard.
        h, Gate::H);
    one_qubit_method!(
        /// Appends an S gate.
        s, Gate::S);
    one_qubit_method!(
        /// Appends an S-dagger gate.
        sdg, Gate::Sdg);
    one_qubit_method!(
        /// Appends a T gate (consumes a magic state when executed).
        t, Gate::T);
    one_qubit_method!(
        /// Appends a T-dagger gate (consumes a magic state when executed).
        tdg, Gate::Tdg);
    two_qubit_method!(
        /// Appends a CNOT with control `a` and target `b`.
        cnot, Gate::Cnot);
    two_qubit_method!(
        /// Appends a controlled-Z between `a` and `b`.
        cz, Gate::Cz);
    two_qubit_method!(
        /// Appends a logical swap of `a` and `b`.
        swap, Gate::Swap);

    /// Number of instructions appended so far.
    pub fn len(&self) -> usize {
        self.circuit.len()
    }

    /// Returns `true` if no instruction has been appended yet.
    pub fn is_empty(&self) -> bool {
        self.circuit.is_empty()
    }

    /// The circuit width this builder was created with.
    pub fn num_qubits(&self) -> u32 {
        self.circuit.num_qubits
    }

    /// Finishes construction, yielding the immutable [`Circuit`].
    pub fn finish(self) -> Circuit {
        self.circuit
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ghz(n: u32) -> Circuit {
        let mut b = Circuit::builder("ghz", n);
        b.h(0);
        for i in 1..n {
            b.cnot(0, i);
        }
        b.finish()
    }

    #[test]
    fn builder_produces_program_order() {
        let c = ghz(3);
        assert_eq!(c.len(), 3);
        assert_eq!(c.instructions()[0].gate(), Gate::H);
        assert_eq!(
            c.instructions()[1].qubits(),
            &[Qubit::new(0), Qubit::new(1)]
        );
        assert_eq!(
            c.instructions()[2].qubits(),
            &[Qubit::new(0), Qubit::new(2)]
        );
    }

    #[test]
    fn counts() {
        let mut b = Circuit::builder("counts", 2);
        b.t(0).tdg(1).cnot(0, 1).h(0).t(0);
        let c = b.finish();
        assert_eq!(c.t_count(), 3);
        assert_eq!(c.two_qubit_count(), 1);
        assert_eq!(c.count_gate(Gate::H), 1);
        assert_eq!(c.count_gate(Gate::Cz), 0);
    }

    #[test]
    fn try_push_rejects_out_of_range() {
        let mut b = Circuit::builder("bad", 2);
        let err = b.try_push(Gate::H, &[2]).unwrap_err();
        assert_eq!(
            err,
            IrError::QubitOutOfRange {
                qubit: 2,
                num_qubits: 2
            }
        );
    }

    #[test]
    fn try_push_rejects_duplicate_operands() {
        let mut b = Circuit::builder("bad", 2);
        let err = b.try_push(Gate::Cnot, &[1, 1]).unwrap_err();
        assert_eq!(err, IrError::DuplicateOperand { qubit: 1 });
    }

    #[test]
    fn try_push_rejects_wrong_arity() {
        let mut b = Circuit::builder("bad", 2);
        let err = b.try_push(Gate::Cnot, &[1]).unwrap_err();
        assert!(matches!(
            err,
            IrError::WrongArity {
                expected: 2,
                actual: 1,
                ..
            }
        ));
        let err = b.try_push(Gate::H, &[0, 1]).unwrap_err();
        assert!(matches!(
            err,
            IrError::WrongArity {
                expected: 1,
                actual: 2,
                ..
            }
        ));
    }

    #[test]
    #[should_panic(expected = "invalid instruction")]
    fn convenience_method_panics_on_bad_operand() {
        let mut b = Circuit::builder("bad", 1);
        b.h(3);
    }

    #[test]
    fn append_remaps_qubits_and_grows_width() {
        let inner = ghz(2);
        let mut outer = Circuit::builder("outer", 1).finish();
        outer.append(&inner, 1);
        assert_eq!(outer.num_qubits(), 3);
        assert_eq!(outer.instructions()[0].qubits(), &[Qubit::new(1)]);
        assert_eq!(
            outer.instructions()[1].qubits(),
            &[Qubit::new(1), Qubit::new(2)]
        );
    }

    #[test]
    fn instruction_display() {
        let c = ghz(2);
        assert_eq!(c.instructions()[0].to_string(), "h q0");
        assert_eq!(c.instructions()[1].to_string(), "cnot q0, q1");
    }

    #[test]
    fn circuit_display_summarizes() {
        let c = ghz(4);
        let s = c.to_string();
        assert!(s.contains("ghz") && s.contains("4 qubits"), "{s}");
    }

    #[test]
    fn touches_checks_operands() {
        let c = ghz(3);
        assert!(c.instructions()[1].touches(Qubit::new(1)));
        assert!(!c.instructions()[1].touches(Qubit::new(2)));
    }

    #[test]
    fn into_iterator_for_ref() {
        let c = ghz(3);
        let n = (&c).into_iter().count();
        assert_eq!(n, 3);
    }
}
