//! Error types for the IR crate.

use std::error::Error;
use std::fmt;

/// An error produced while constructing or validating a circuit.
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum IrError {
    /// A gate referenced a qubit index at or beyond the circuit width.
    QubitOutOfRange {
        /// The offending qubit index.
        qubit: u32,
        /// The circuit width.
        num_qubits: u32,
    },
    /// A two-qubit gate was given the same qubit for both operands.
    DuplicateOperand {
        /// The repeated qubit index.
        qubit: u32,
    },
    /// A gate was applied with the wrong number of operands.
    WrongArity {
        /// The gate mnemonic.
        gate: &'static str,
        /// The expected operand count.
        expected: usize,
        /// The provided operand count.
        actual: usize,
    },
}

impl fmt::Display for IrError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IrError::QubitOutOfRange { qubit, num_qubits } => write!(
                f,
                "qubit index {qubit} out of range for circuit of {num_qubits} qubits"
            ),
            IrError::DuplicateOperand { qubit } => {
                write!(f, "two-qubit gate applied twice to qubit {qubit}")
            }
            IrError::WrongArity {
                gate,
                expected,
                actual,
            } => write!(f, "gate {gate} expects {expected} operand(s), got {actual}"),
        }
    }
}

impl Error for IrError {}

/// An error produced when parsing a gate mnemonic.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseGateError {
    input: String,
}

impl ParseGateError {
    pub(crate) fn new(input: &str) -> Self {
        ParseGateError {
            input: input.to_owned(),
        }
    }

    /// The string that failed to parse.
    pub fn input(&self) -> &str {
        &self.input
    }
}

impl fmt::Display for ParseGateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "unknown gate mnemonic `{}`", self.input)
    }
}

impl Error for ParseGateError {}

/// An error produced when parsing a QASM text dump back into a [`Circuit`].
///
/// [`Circuit`]: crate::Circuit
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct QasmParseError {
    line: usize,
    message: String,
}

impl QasmParseError {
    pub(crate) fn new(line: usize, message: impl Into<String>) -> Self {
        QasmParseError {
            line,
            message: message.into(),
        }
    }

    /// One-based line number at which parsing failed.
    pub fn line(&self) -> usize {
        self.line
    }

    /// Human-readable description of the failure.
    pub fn message(&self) -> &str {
        &self.message
    }
}

impl fmt::Display for QasmParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "qasm parse error at line {}: {}",
            self.line, self.message
        )
    }
}

impl Error for QasmParseError {}

/// A user-facing failure in one of the command-line tools.
///
/// The toolflow binaries (`scq`, the bench harnesses) report every
/// bad-input condition through this type instead of panicking: argument
/// mistakes, unreadable files, and semantically invalid inputs all
/// become an `error: ...` diagnostic plus a nonzero exit.
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum CliError {
    /// The command line itself was malformed (unknown flag, missing
    /// operand, unparsable number).
    Usage(String),
    /// A file the user pointed at could not be read or written.
    Io {
        /// The path involved.
        path: String,
        /// The underlying OS error, rendered.
        message: String,
    },
    /// The input parsed but was semantically unusable.
    Invalid(String),
}

impl CliError {
    /// Wraps an IO error with the path it occurred on.
    pub fn io(path: impl Into<String>, err: &std::io::Error) -> Self {
        CliError::Io {
            path: path.into(),
            message: err.to_string(),
        }
    }

    /// Shorthand for a usage complaint.
    pub fn usage(message: impl Into<String>) -> Self {
        CliError::Usage(message.into())
    }

    /// Shorthand for an invalid-input complaint.
    pub fn invalid(message: impl Into<String>) -> Self {
        CliError::Invalid(message.into())
    }
}

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CliError::Usage(m) => write!(f, "{m}"),
            CliError::Io { path, message } => write!(f, "{path}: {message}"),
            CliError::Invalid(m) => write!(f, "{m}"),
        }
    }
}

impl Error for CliError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ir_error_messages_are_informative() {
        let e = IrError::QubitOutOfRange {
            qubit: 9,
            num_qubits: 4,
        };
        let msg = e.to_string();
        assert!(msg.contains('9') && msg.contains('4'), "{msg}");

        let e = IrError::DuplicateOperand { qubit: 2 };
        assert!(e.to_string().contains('2'));

        let e = IrError::WrongArity {
            gate: "cnot",
            expected: 2,
            actual: 1,
        };
        assert!(e.to_string().contains("cnot"));
    }

    #[test]
    fn errors_implement_std_error() {
        fn assert_error<E: std::error::Error + Send + Sync + 'static>() {}
        assert_error::<IrError>();
        assert_error::<ParseGateError>();
        assert_error::<QasmParseError>();
        assert_error::<CliError>();
    }

    #[test]
    fn cli_error_renders_each_shape() {
        let e = CliError::usage("unknown flag `--frobnicate`");
        assert!(e.to_string().contains("--frobnicate"));

        let io = std::io::Error::new(std::io::ErrorKind::NotFound, "no such file");
        let e = CliError::io("defects.map", &io);
        assert!(e.to_string().starts_with("defects.map: "));
        assert!(e.to_string().contains("no such file"));

        let e = CliError::invalid("defect rate must be in [0, 1)");
        assert!(e.to_string().contains("[0, 1)"));
    }

    #[test]
    fn qasm_error_accessors() {
        let e = QasmParseError::new(12, "bad operand");
        assert_eq!(e.line(), 12);
        assert_eq!(e.message(), "bad operand");
        assert!(e.to_string().contains("12"));
    }
}
