//! Property-based tests for the IR: random circuits must always produce
//! well-formed DAGs, round-trippable QASM, and consistent analyses.

use proptest::prelude::*;
use scq_ir::{
    analysis, circuit_from_qasm, circuit_to_qasm, optimize, sim, Circuit, DependencyDag, Gate,
    InteractionGraph,
};

/// Strategy producing an arbitrary *unitary* circuit (no prep/meas) on
/// few qubits, suitable for statevector verification.
fn arb_unitary_circuit(max_qubits: u32, max_ops: usize) -> impl Strategy<Value = Circuit> {
    let unitary: Vec<Gate> = Gate::ALL
        .iter()
        .copied()
        .filter(|g| !g.is_measurement() && !g.is_preparation())
        .collect();
    (2..=max_qubits)
        .prop_flat_map(move |n| {
            let gates = unitary.clone();
            let inst = (0usize..gates.len(), 0..n, 0..n.saturating_sub(1).max(1));
            (
                Just(n),
                Just(gates),
                proptest::collection::vec(inst, 0..max_ops),
            )
        })
        .prop_map(|(n, gates, raw)| {
            let mut b = Circuit::builder("prop-unitary", n);
            for (g, a, boff) in raw {
                let gate = gates[g];
                if gate.arity() == 1 {
                    b.try_push(gate, &[a]).unwrap();
                } else {
                    let second = (a + 1 + boff) % n;
                    if second != a {
                        b.try_push(gate, &[a, second]).unwrap();
                    }
                }
            }
            b.finish()
        })
}

/// Strategy producing an arbitrary well-formed circuit of up to
/// `max_qubits` qubits and `max_ops` instructions.
fn arb_circuit(max_qubits: u32, max_ops: usize) -> impl Strategy<Value = Circuit> {
    (2..=max_qubits)
        .prop_flat_map(move |n| {
            let inst = (0usize..Gate::ALL.len(), 0..n, 0..n.saturating_sub(1).max(1));
            (Just(n), proptest::collection::vec(inst, 0..max_ops))
        })
        .prop_map(|(n, raw)| {
            let mut b = Circuit::builder("prop", n);
            for (g, a, boff) in raw {
                let gate = Gate::ALL[g];
                if gate.arity() == 1 {
                    b.try_push(gate, &[a]).unwrap();
                } else {
                    // Derive a second operand distinct from the first.
                    let second = (a + 1 + boff) % n;
                    if second != a {
                        b.try_push(gate, &[a, second]).unwrap();
                    }
                }
            }
            b.finish()
        })
}

proptest! {
    #[test]
    fn dag_invariants_hold(c in arb_circuit(12, 120)) {
        let dag = DependencyDag::from_circuit(&c);
        prop_assert!(dag.check_invariants());
        prop_assert_eq!(dag.len(), c.len());
    }

    #[test]
    fn depth_bounded_by_len_and_positive_parallelism(c in arb_circuit(10, 80)) {
        let dag = DependencyDag::from_circuit(&c);
        prop_assert!(dag.depth() <= c.len());
        if !c.is_empty() {
            prop_assert!(dag.parallelism_factor() >= 1.0 - 1e-12);
            prop_assert!(dag.parallelism_factor() <= c.len() as f64 + 1e-12);
        }
    }

    #[test]
    fn level_widths_sum_to_total_ops(c in arb_circuit(10, 80)) {
        let dag = DependencyDag::from_circuit(&c);
        let total: usize = dag.level_widths().iter().sum();
        prop_assert_eq!(total, c.len());
    }

    #[test]
    fn criticality_never_below_one_nor_above_remaining_depth(c in arb_circuit(10, 80)) {
        let dag = DependencyDag::from_circuit(&c);
        for i in 0..dag.len() {
            prop_assert!(dag.criticality(i) >= 1);
            prop_assert!((dag.criticality(i) as usize) <= dag.depth());
        }
    }

    #[test]
    fn unit_weighted_cp_equals_depth(c in arb_circuit(8, 60)) {
        let dag = DependencyDag::from_circuit(&c);
        prop_assert_eq!(dag.weighted_critical_path(&c, |_, _| 1) as usize, dag.depth());
    }

    #[test]
    fn qasm_roundtrip(c in arb_circuit(10, 60)) {
        let text = circuit_to_qasm(&c);
        let back = circuit_from_qasm(&text).unwrap();
        prop_assert_eq!(back, c);
    }

    #[test]
    fn interaction_graph_total_equals_two_qubit_count(c in arb_circuit(10, 80)) {
        let g = InteractionGraph::from_circuit(&c);
        prop_assert_eq!(g.total_weight() as usize, c.two_qubit_count());
    }

    #[test]
    fn analysis_is_internally_consistent(c in arb_circuit(10, 80)) {
        let stats = analysis::analyze(&c);
        prop_assert_eq!(stats.total_ops, c.len());
        let hist_total: usize = stats.gate_histogram.values().sum();
        prop_assert_eq!(hist_total, c.len());
        if !c.is_empty() {
            let expect = c.len() as f64 / stats.depth as f64;
            prop_assert!((stats.parallelism_factor - expect).abs() < 1e-9);
        }
    }

    #[test]
    fn peephole_never_grows_circuits(c in arb_circuit(10, 100)) {
        let (opt, stats) = optimize::peephole(&c);
        prop_assert!(opt.len() <= c.len());
        prop_assert!(opt.t_count() <= c.t_count());
        prop_assert_eq!(c.len() - opt.len(), stats.removed());
        let d_before = DependencyDag::from_circuit(&c).depth();
        let d_after = DependencyDag::from_circuit(&opt).depth();
        prop_assert!(d_after <= d_before);
    }

    #[test]
    fn peephole_reaches_a_fixpoint(c in arb_circuit(8, 80)) {
        let (once, _) = optimize::peephole(&c);
        let (twice, stats) = optimize::peephole(&once);
        prop_assert_eq!(&once, &twice);
        prop_assert_eq!(stats.removed(), 0);
    }

    #[test]
    fn peephole_preserves_semantics(c in arb_unitary_circuit(5, 40)) {
        // The decisive test: the optimized circuit produces the exact
        // same statevector (including global phase) as the original.
        let (opt, _) = optimize::peephole(&c);
        let before = sim::simulate(&c).unwrap();
        let after = sim::simulate(&opt).unwrap();
        prop_assert!(
            before.distance(&after) < 1e-9,
            "statevector changed by {}", before.distance(&after)
        );
    }

    #[test]
    fn simulation_preserves_norm(c in arb_unitary_circuit(5, 40)) {
        let s = sim::simulate(&c).unwrap();
        let total: f64 = (0..(1usize << c.num_qubits())).map(|i| s.probability(i)).sum();
        prop_assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn append_preserves_instruction_count(
        a in arb_circuit(6, 40),
        b in arb_circuit(6, 40),
        offset in 0u32..8,
    ) {
        let mut combined = a.clone();
        combined.append(&b, offset);
        prop_assert_eq!(combined.len(), a.len() + b.len());
        prop_assert!(combined.num_qubits() >= a.num_qubits());
        prop_assert!(combined.num_qubits() >= offset + b.num_qubits());
    }
}
