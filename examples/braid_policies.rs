//! Braid priority policies on a congested workload (paper Section 6.3).
//!
//! Schedules a parallel Ising-model instance under all seven policies
//! and prints the schedule-length-to-critical-path ratio and mesh
//! utilization — a single-application slice of Figure 6.
//!
//! Run with: `cargo run --release --example braid_policies`

use scq::apps::{ising, IsingParams};
use scq::braid::{schedule, BraidConfig, Policy};
use scq::ir::{DependencyDag, InteractionGraph};
use scq::layout::place;

fn main() {
    let circuit = ising(&IsingParams {
        spins: 64,
        trotter_steps: 4,
        ..Default::default()
    });
    let dag = DependencyDag::from_circuit(&circuit);
    let graph = InteractionGraph::from_circuit(&circuit);
    println!(
        "workload: {} ({} ops, {} qubits)",
        circuit.name(),
        circuit.len(),
        circuit.num_qubits()
    );
    println!();
    println!("policy    schedule/CP    mesh utilization    braids    adaptive    drops");
    for policy in Policy::ALL {
        let layout = place(&graph, policy.layout_strategy(), None);
        let config = BraidConfig {
            policy,
            code_distance: 5,
            ..Default::default()
        };
        match schedule(&circuit, &dag, &layout, &config) {
            Ok(s) => println!(
                "{policy}      {:>8.2}      {:>12.1}%    {:>6}    {:>8}    {:>5}",
                s.schedule_to_cp_ratio(),
                s.mesh_utilization * 100.0,
                s.braids_placed,
                s.adaptive_routes,
                s.drops
            ),
            Err(e) => println!("{policy}      failed: {e}"),
        }
    }
    println!();
    println!("Policy 6 combines interleaving, optimized layout, and all priority");
    println!("metrics; the paper reports up to ~7x schedule-length reduction.");
}
