//! Planar vs double-defect favorability for a serial and a parallel
//! application (paper Section 7.2, Figure 8).
//!
//! Sweeps computation sizes at `pP = 1e-8`, prints the normalized
//! double-defect/planar resource ratios, and locates each application's
//! cross-over point.
//!
//! Run with: `cargo run --release --example code_comparison`

use scq::apps::Benchmark;
use scq::estimate::{AppProfile, EstimateConfig};
use scq::explore::{crossover_size, log_spaced, ratio_sweep};

fn main() {
    let config = EstimateConfig::default();
    println!("technology: {}", config.technology);
    for bench in [Benchmark::SquareRoot, Benchmark::IsingFull] {
        let profile = AppProfile::calibrate(bench);
        println!(
            "\n== {} (parallelism {:.1}) ==",
            profile.name, profile.parallelism
        );
        println!("computation size    qubits ratio    time ratio    qubits x time");
        for pt in ratio_sweep(&profile, &config, &log_spaced(1e2, 1e24, 12)) {
            println!(
                "      {:>9.1e}    {:>12.2}    {:>10.2}    {:>13.2}",
                pt.kq,
                pt.qubit_ratio,
                pt.time_ratio,
                pt.space_time_ratio()
            );
        }
        match crossover_size(&profile, &config, (1.0, 1e24)) {
            Some(kq) => println!("cross-over point: {kq:.2e} logical ops"),
            None => println!("cross-over point: beyond 1e24 (planar favored throughout)"),
        }
    }
    println!("\nRatios above 1 favor planar codes; the parallel application");
    println!("crosses over at a much larger computation size (braid congestion).");
}
