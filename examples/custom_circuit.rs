//! Scheduling a custom circuit through the public API.
//!
//! Builds a ripple-carry adder from gate-level primitives, round-trips
//! it through the QASM text format, and schedules it on both
//! architectures — the workflow for any program outside the bundled
//! benchmark suite.
//!
//! Run with: `cargo run --release --example custom_circuit`

use scq::apps::primitives::{ripple_add, toffoli};
use scq::braid::{schedule_circuit, BraidConfig, Policy};
use scq::ir::{analysis, circuit_from_qasm, circuit_to_qasm, Circuit, DependencyDag};
use scq::teleport::{schedule_planar, PlanarConfig};

fn main() {
    // An 8-bit in-place adder with a final carry Toffoli.
    let w = 8u32;
    let mut b = Circuit::builder("adder8", 2 * w + 2);
    let a: Vec<u32> = (0..w).collect();
    let s: Vec<u32> = (w..2 * w).collect();
    ripple_add(&mut b, &a, &s, 2 * w);
    toffoli(&mut b, a[w as usize - 1], s[w as usize - 1], 2 * w + 1);
    let circuit = b.finish();

    // Round-trip through the textual assembly format.
    let qasm = circuit_to_qasm(&circuit);
    let circuit = circuit_from_qasm(&qasm).expect("round-trip parses");
    println!("{}", analysis::analyze(&circuit));
    println!("first lines of the QASM dump:");
    for line in qasm.lines().take(6) {
        println!("  {line}");
    }

    // Double-defect backend.
    let braid = schedule_circuit(
        &circuit,
        &BraidConfig {
            policy: Policy::P6,
            code_distance: 5,
            ..Default::default()
        },
    )
    .expect("braid scheduling succeeds");
    println!("\nbraid backend:  {braid}");

    // Planar backend.
    let dag = DependencyDag::from_circuit(&circuit);
    let planar = schedule_planar(&circuit, &dag, &PlanarConfig::default());
    println!(
        "planar backend: {} cycles, {} teleports, peak {} live EPRs",
        planar.cycles,
        planar.simd.total_teleports(),
        planar.epr.peak_live_eprs
    );
}
