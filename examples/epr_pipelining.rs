//! Just-in-time EPR distribution (paper Section 8.1).
//!
//! Extracts the teleport demand trace of a SHA-1 instance from the
//! Multi-SIMD scheduler, then sweeps lookahead window sizes against the
//! eager-prefetch baseline: small windows starve teleports, large
//! windows flood the machine with live EPR pairs.
//!
//! Run with: `cargo run --release --example epr_pipelining`

use scq::apps::{sha1, Sha1Params};
use scq::ir::DependencyDag;
use scq::teleport::{
    schedule_simd, simulate_epr_distribution, DistributionPolicy, EprConfig, EprDemand, SimdConfig,
};

fn main() {
    let circuit = sha1(&Sha1Params {
        word_bits: 16,
        rounds: 8,
    });
    let dag = DependencyDag::from_circuit(&circuit);
    let simd = schedule_simd(&circuit, &dag, &SimdConfig::default());
    let demands: Vec<EprDemand> = simd
        .teleport_times
        .iter()
        .map(|&t| EprDemand {
            time: t,
            distance: 8,
        })
        .collect();
    let config = EprConfig::default();

    println!(
        "workload: {} — {} teleports over {} timesteps",
        circuit.name(),
        demands.len(),
        simd.timesteps
    );

    let eager = simulate_epr_distribution(&demands, DistributionPolicy::EagerPrefetch, &config);
    println!(
        "\neager prefetch baseline: peak {} live EPR pairs, {:.1}% latency overhead",
        eager.peak_live_eprs,
        eager.latency_overhead() * 100.0
    );

    println!("\nwindow    peak live EPRs    qubit savings    latency overhead");
    for window in [1usize, 4, 16, 64, 128, 256, 512, 1024] {
        let jit =
            simulate_epr_distribution(&demands, DistributionPolicy::JustInTime { window }, &config);
        println!(
            "{window:>6}    {:>14}    {:>12.1}x    {:>15.2}%",
            jit.peak_live_eprs,
            eager.peak_live_eprs as f64 / jit.peak_live_eprs.max(1) as f64,
            jit.latency_overhead() * 100.0
        );
    }
    println!("\nThe paper reports up to ~24x qubit savings at <= ~4% added latency");
    println!("for well-chosen windows.");
}
