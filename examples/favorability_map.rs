//! ASCII rendering of the paper's Figure 9 design-space map for one
//! application: which encoding wins at each (error rate, computation
//! size) design point.
//!
//! Run with: `cargo run --release --example favorability_map [app]`
//! where `app` is one of: gse, sq, sha1, im-semi, im-full (default gse).

use scq::apps::Benchmark;
use scq::estimate::{estimate_both, AppProfile, EstimateConfig};
use scq::explore::log_spaced;

fn pick_app(arg: Option<&str>) -> Benchmark {
    match arg {
        Some("sq") => Benchmark::SquareRoot,
        Some("sha1") => Benchmark::Sha1,
        Some("im-semi") => Benchmark::IsingSemi,
        Some("im-full") => Benchmark::IsingFull,
        _ => Benchmark::Gse,
    }
}

fn main() {
    let arg = std::env::args().nth(1);
    let bench = pick_app(arg.as_deref());
    let profile = AppProfile::calibrate(bench);
    let base = EstimateConfig::default();

    let rates = log_spaced(1e-8, 1e-3, 11);
    let sizes: Vec<f64> = log_spaced(1.0, 1e24, 25);

    println!(
        "{}: P = planar wins, D = double-defect wins, . = above threshold",
        profile.name
    );
    println!("(rows: computation size 1e24 down to 1e0; cols: pP 1e-8 .. 1e-3)\n");
    for &kq in sizes.iter().rev() {
        print!("1e{:>2}  ", kq.log10().round() as i64);
        for &p in &rates {
            let cfg = EstimateConfig {
                technology: base.technology.with_error_rate(p),
                ..base
            };
            let c = match estimate_both(&profile, kq, &cfg) {
                Ok((planar, dd)) => {
                    if dd.space_time() <= planar.space_time() {
                        'D'
                    } else {
                        'P'
                    }
                }
                Err(_) => '.',
            };
            print!("{c}");
        }
        println!();
    }
    println!("\n      {}", "^".repeat(rates.len()));
    println!(
        "      pP = 1e-8 {} 1e-3",
        " ".repeat(rates.len().saturating_sub(16))
    );
    println!("\nThe P region under the boundary is where the paper recommends the");
    println!("planar encoding; it grows as device error rates improve (leftward).");
}
