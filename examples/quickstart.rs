//! Quickstart: run the full toolflow on every benchmark application.
//!
//! For each application this generates the circuit, analyzes it, picks a
//! code distance, schedules it on both the tiled (double-defect, braids)
//! and Multi-SIMD (planar, teleportation) architectures, and prints the
//! space-time verdict.
//!
//! Run with: `cargo run --release --example quickstart`

use scq::apps::Benchmark;
use scq::core::{run_toolflow, ToolflowConfig};

fn main() {
    let config = ToolflowConfig::default();
    println!("technology: {}", config.technology);
    println!();
    for bench in Benchmark::ALL {
        match run_toolflow(bench, &config) {
            Ok(report) => println!("{report}\n"),
            Err(e) => println!("== {bench} ==\n  failed: {e}\n"),
        }
    }
}
